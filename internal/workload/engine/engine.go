// Package engine is the declarative workload-generation subsystem: a
// Spec describes a transactional key-value workload — keyspace size, key
// distribution (uniform, Zipfian, hot-set), operation mix (point read,
// read-modify-write, insert, delete, scan) and transaction-size
// distribution — and a Driver executes it against any tm.System through
// a pluggable Backend (the chained hash map or the B+tree index).
//
// The point of the engine is that a new workload becomes a ~10-line Spec
// instead of a bespoke package: the YCSB-style scenarios
// (internal/workload/ycsb) and the Zipfian-θ capacity sweep in
// internal/experiments are all Specs over the same driver, measured
// through the existing internal/harness Observer pipeline.
//
// Determinism: every per-thread generator is derived with
// rng.Stream(Spec.Seed, thread), so one seed reproduces the whole run —
// the same (seed, spec, thread) always yields the identical operation
// sequence, which the engine's tests pin.
package engine

import (
	"fmt"

	"sihtm/internal/rng"
	"sihtm/internal/tm"
)

// Driver executes one Spec against one Backend. It is immutable after
// New and shared by all workers: per-thread state lives in Worker.
type Driver struct {
	spec Spec
	b    Backend
	dist KeyDraw
	// cum is the cumulative percent table behind op picking: the first
	// index with cum[i] > draw identifies the mix entry.
	cum []int
}

// New validates the spec and builds its driver over the backend.
func New(spec Spec, b Backend) (*Driver, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	dist, err := NewKeyDraw(spec.Dist, spec.Keys)
	if err != nil {
		return nil, fmt.Errorf("engine: %s: %w", spec.Name, err)
	}
	d := &Driver{spec: spec, b: b, dist: dist}
	total := 0
	for _, m := range spec.Mix {
		total += m.Percent
		d.cum = append(d.cum, total)
	}
	return d, nil
}

// Spec returns the (defaulted) spec the driver runs.
func (d *Driver) Spec() Spec { return d.spec }

// Backend returns the substrate the driver runs against.
func (d *Driver) Backend() Backend { return d.b }

// pickOp draws one op from the mix.
func (d *Driver) pickOp(r *rng.Rand) Op {
	v := r.Intn(100)
	for i, c := range d.cum {
		if v < c {
			return d.spec.Mix[i].Op
		}
	}
	return d.spec.Mix[len(d.spec.Mix)-1].Op
}

// NewWorker builds one thread's executor: its deterministic stream
// (rng.Stream(spec.Seed, thread)) and its backend session. Sessions
// offering AsyncSession get the deferred op path (one shipped unit per
// transaction on remote backends).
func (d *Driver) NewWorker(sys tm.System, thread int) *Worker {
	sess := d.b.NewSession()
	async, _ := sess.(AsyncSession)
	return &Worker{
		d:      d,
		sys:    sys,
		thread: thread,
		r:      rng.Stream(d.spec.Seed, uint64(thread)),
		sess:   sess,
		async:  async,
	}
}

// Workers returns the harness-shaped per-thread worker factory
// (harness.Run / harness.Sweep.Setup's mkWorker).
func (d *Driver) Workers(sys tm.System) func(thread int) func() {
	return func(thread int) func() {
		w := d.NewWorker(sys, thread)
		return w.Op
	}
}

// plannedOp is one drawn operation of a planned transaction.
type plannedOp struct {
	op  Op
	key uint64
}

// Worker is one thread's workload executor.
type Worker struct {
	d      *Driver
	sys    tm.System
	thread int
	r      *rng.Rand
	sess   Session
	async  AsyncSession // non-nil when sess offers the deferred path
	plan   []plannedOp
}

// planTx draws the next transaction into w.plan: its size, then one
// (op, key) pair per slot. Planning happens strictly outside the
// transaction so aborted attempts replay the identical operations (the
// TM idempotency contract), and it touches only the worker's own
// stream, which is what makes sequences reproducible per thread.
func (w *Worker) planTx() (readOnly bool, inserts int) {
	n := w.d.spec.OpsPerTxMin
	if w.d.spec.OpsPerTxMax > n {
		n = w.r.IntRange(n, w.d.spec.OpsPerTxMax)
	}
	w.plan = w.plan[:0]
	readOnly = true
	for i := 0; i < n; i++ {
		op := w.d.pickOp(w.r)
		key := w.d.dist.Draw(w.r)
		if !op.ReadOnly() {
			readOnly = false
		}
		// Inserts and read-modify-writes may consume a fresh node if the
		// key turns out to be absent; Prepare sizes pools for the worst
		// case.
		if op == OpInsert || op == OpReadModifyWrite {
			inserts++
		}
		w.plan = append(w.plan, plannedOp{op: op, key: key})
	}
	return readOnly, inserts
}

// Op plans and runs exactly one transaction of the mix to commit.
func (w *Worker) Op() {
	readOnly, inserts := w.planTx()
	kind := tm.KindUpdate
	if readOnly {
		kind = tm.KindReadOnly
	}
	w.sess.Prepare(inserts)
	w.sys.Atomic(w.thread, kind, func(ops tm.Ops) {
		w.sess.Reset()
		if w.async != nil {
			// All of a planned transaction's results are discarded, so the
			// whole plan defers: the session ships it as one unit at Commit.
			for _, p := range w.plan {
				switch p.op {
				case OpRead:
					w.async.ReadAsync(p.key)
				case OpReadModifyWrite:
					w.async.ReadModifyWriteAsync(p.key, 1)
				case OpInsert:
					w.async.InsertAsync(p.key, InitialValue(p.key))
				case OpDelete:
					w.async.DeleteAsync(p.key)
				case OpScan:
					w.async.ScanAsync(p.key, w.d.spec.ScanLen)
				}
			}
			return
		}
		for _, p := range w.plan {
			switch p.op {
			case OpRead:
				w.sess.Read(ops, p.key)
			case OpReadModifyWrite:
				v, _ := w.sess.Read(ops, p.key)
				w.sess.Insert(ops, p.key, v+1)
			case OpInsert:
				w.sess.Insert(ops, p.key, InitialValue(p.key))
			case OpDelete:
				w.sess.Delete(ops, p.key)
			case OpScan:
				w.sess.Scan(ops, p.key, w.d.spec.ScanLen)
			}
		}
	})
	w.sess.Commit()
}

// InitialValue is the value stored under a key at population time and by
// inserts, so verification can recompute expected contents.
func InitialValue(key uint64) uint64 { return key * 10 }

// Populate inserts every key of the spec's keyspace into the backend
// quiescently (through DirectOps), so reads always hit and chain/leaf
// occupancy is exactly Keys. Call before handing the backend to workers.
//
// Keys are inserted highest-first: on the prepend-style hash-map
// backend that leaves the lowest keys at chain heads, so Zipfian-hot
// ranks (rank 0 = key 0) have the shortest traversals — YCSB's "latest"
// correlation between recency and popularity. This is what makes a
// transaction's distinct-line footprint genuinely shrink with skew in
// the Zipfian-θ sweeps.
func Populate(b Backend, spec Spec) {
	s := b.NewSession()
	ops := b.Direct()
	for k := spec.Keys - 1; k >= 0; k-- {
		s.Prepare(1)
		s.Reset()
		s.Insert(ops, uint64(k), InitialValue(uint64(k)))
		s.Commit()
	}
}
