package engine

import (
	"math"
	"testing"

	"sihtm/internal/rng"
)

// Zipfian empirical frequencies must match the theoretical
// 1/((k+1)^θ·ζ(n,θ)) law: the hot ranks within a few percent relative,
// and the aggregate deviation (total-variation distance) small.
func TestZipfMatchesTheory(t *testing.T) {
	const (
		n     = 1000
		draws = 400000
	)
	for _, theta := range []float64{0.5, 0.9, 0.99} {
		kd, err := NewKeyDraw(Dist{Kind: DistZipfian, Theta: theta}, n)
		if err != nil {
			t.Fatal(err)
		}
		z := kd.(*zipfDist)
		r := rng.New(1)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[kd.Draw(r)]++
		}
		// Hot ranks: relative error within 5% (rank 10 still collects
		// thousands of samples at these θ).
		for k := uint64(0); k < 10; k++ {
			want := z.RankProbability(k)
			got := float64(counts[k]) / draws
			if rel := math.Abs(got-want) / want; rel > 0.05 {
				t.Errorf("θ=%v rank %d: empirical %.5f vs theory %.5f (rel %.3f)",
					theta, k, got, want, rel)
			}
		}
		// Whole distribution: total-variation distance below 2%.
		tv := 0.0
		for k := 0; k < n; k++ {
			tv += math.Abs(float64(counts[k])/draws - z.RankProbability(uint64(k)))
		}
		tv /= 2
		if tv > 0.02 {
			t.Errorf("θ=%v: total-variation distance %.4f > 0.02", theta, tv)
		}
		// Rank probabilities must sum to ~1 (the oracle itself).
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += z.RankProbability(uint64(k))
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("θ=%v: Σ RankProbability = %v", theta, sum)
		}
	}
}

// θ=0 must degenerate to uniform, and all draws must stay in range for
// every distribution.
func TestDistRangesAndUniformity(t *testing.T) {
	const n = 64
	dists := []Dist{
		{Kind: DistUniform},
		{Kind: DistZipfian, Theta: 0},
		{Kind: DistZipfian, Theta: 0.99},
		{Kind: DistHotSet, HotKeysPercent: 10, HotOpsPercent: 90},
	}
	for _, d := range dists {
		kd, err := NewKeyDraw(d, n)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(9)
		for i := 0; i < 100000; i++ {
			if k := kd.Draw(r); k >= n {
				t.Fatalf("%s: draw %d out of range", d, k)
			}
		}
	}

	// Uniform: every key within 10% of the mean.
	kd, _ := NewKeyDraw(Dist{Kind: DistZipfian, Theta: 0}, n)
	if _, ok := kd.(uniformDist); !ok {
		t.Fatalf("θ=0 did not degenerate to uniform: %T", kd)
	}
	r := rng.New(5)
	counts := make([]int, n)
	const draws = 640000
	for i := 0; i < draws; i++ {
		counts[kd.Draw(r)]++
	}
	mean := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-mean)/mean > 0.1 {
			t.Errorf("uniform key %d count %d vs mean %.0f", k, c, mean)
		}
	}
}

// Hot-set: the hot fraction of draws must land in the hot key range.
func TestHotSetSkew(t *testing.T) {
	const n = 1000
	kd, err := NewKeyDraw(Dist{Kind: DistHotSet, HotKeysPercent: 10, HotOpsPercent: 80}, n)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	hot := 0
	const draws = 200000
	for i := 0; i < draws; i++ {
		if kd.Draw(r) < n/10 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if frac < 0.77 || frac > 0.83 {
		t.Fatalf("hot fraction %.3f, want ≈0.80", frac)
	}
}

// Zipfian must be monotone: hotter ranks must not be rarer than colder
// ones by more than noise.
func TestZipfMonotone(t *testing.T) {
	kd, err := NewKeyDraw(Dist{Kind: DistZipfian, Theta: 0.99}, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	counts := make([]int, 100)
	for i := 0; i < 200000; i++ {
		counts[kd.Draw(r)]++
	}
	for k := 0; k < 9; k++ {
		if counts[k] < counts[k+1] {
			t.Errorf("rank %d (%d draws) colder than rank %d (%d)", k, counts[k], k+1, counts[k+1])
		}
	}
}
