// Package vacation is a STAMP-vacation-style travel-reservation
// workload: three resource tables (cars, flights, rooms) indexed by
// transactional B+trees, a customer table holding per-customer
// reservation lists, and a task mix of browsing quotes (read-only),
// making reservations (multi-table lookup + booking), cancelling
// customers and updating table prices. It is the paper's §4 "STAMP
// applications" axis for this reproduction: transaction footprint is
// configurable through QueryN (items examined per task), so the same
// scenario spans TMCAM-friendly and capacity-stretching shapes.
//
// The package is built on the workload engine's primitives: item draws
// go through engine.KeyDraw (uniform or Zipfian over the query range)
// and every generator derives from one seed via rng.Stream, so runs are
// reproducible like every other workload in the repository.
package vacation

import (
	"fmt"

	"sihtm/internal/index/btree"
	"sihtm/internal/memsim"
	"sihtm/internal/rng"
	"sihtm/internal/tm"
	"sihtm/internal/workload/engine"
)

// The three resource tables.
const (
	TableCar = iota
	TableFlight
	TableRoom
	NumTables
)

// tableName labels tables in errors.
var tableName = [NumTables]string{"car", "flight", "room"}

// Resource record layout (one cache line): total capacity, currently
// available units, price per unit.
const (
	recTotal = 0
	recAvail = 1
	recPrice = 2
)

// Reservation-list node layout (one cache line): table, item id, price
// paid, next node (0 = end).
const (
	resTable = 0
	resID    = 1
	resPrice = 2
	resNext  = 3
)

// Config parameterises the scenario.
type Config struct {
	// Relations is the row count of each resource table.
	Relations int
	// Customers is the customer count.
	Customers int
	// QueryN is the number of items a task examines — the transaction
	// footprint knob (each item costs a B+tree descent plus the record
	// line).
	QueryN int
	// QueryRangePct restricts tasks to the first QueryRangePct percent
	// of each table (STAMP's -q): smaller ranges mean higher contention.
	QueryRangePct int
	// Task mix in percent; must sum to 100.
	BrowsePct, ReservePct, DeleteCustomerPct, UpdateTablesPct int
	// Dist draws item ids within the query range (uniform by default).
	Dist engine.Dist
	// Seed reproduces the run (population uses rng.StreamPopulate,
	// worker threads their thread stream).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Relations == 0 {
		c.Relations = 1 << 10
	}
	if c.Customers == 0 {
		c.Customers = 1 << 8
	}
	if c.QueryN == 0 {
		c.QueryN = 2
	}
	if c.QueryRangePct == 0 {
		c.QueryRangePct = 100
	}
	if c.BrowsePct+c.ReservePct+c.DeleteCustomerPct+c.UpdateTablesPct == 0 {
		c.BrowsePct, c.ReservePct, c.DeleteCustomerPct, c.UpdateTablesPct = 50, 40, 5, 5
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Relations <= 0 || c.Customers <= 0 || c.QueryN <= 0 {
		return fmt.Errorf("vacation: relations, customers and queryN must be positive (%d, %d, %d)",
			c.Relations, c.Customers, c.QueryN)
	}
	if c.QueryRangePct <= 0 || c.QueryRangePct > 100 {
		return fmt.Errorf("vacation: query range %d%% out of (0,100]", c.QueryRangePct)
	}
	if s := c.BrowsePct + c.ReservePct + c.DeleteCustomerPct + c.UpdateTablesPct; s != 100 {
		return fmt.Errorf("vacation: task mix sums to %d, want 100", s)
	}
	return nil
}

// queryRange is the item-id range tasks draw from.
func (c Config) queryRange() int {
	n := c.Relations * c.QueryRangePct / 100
	if n < 1 {
		n = 1
	}
	return n
}

// HeapLinesNeeded estimates the heap the scenario needs: records,
// customer heads, B+tree nodes for all four indexes, reservation-node
// churn and slack.
func (c Config) HeapLinesNeeded() int {
	c = c.withDefaults()
	rows := NumTables*c.Relations + c.Customers
	btreeLines := rows // ~2 lines per node, ~half-full leaves
	return rows + btreeLines + 64*c.Customers + 1<<14
}

// Manager owns the database: the three resource tables and the customer
// table, each indexed by a transactional B+tree mapping id to the
// record's (immutable) line address.
type Manager struct {
	heap      *memsim.Heap
	cfg       Config
	tables    [NumTables]*btree.Tree
	customers *btree.Tree
	// Quiescent caches for population and verification (the indexes are
	// the transactional access path).
	recordOf [NumTables][]memsim.Addr
	headOf   []memsim.Addr
}

// NewManager allocates and populates the database on heap.
func NewManager(heap *memsim.Heap, cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{heap: heap, cfg: cfg, customers: btree.New(heap)}
	r := rng.Stream(cfg.Seed, rng.StreamPopulate)
	ops := engine.DirectOps{Heap: heap}
	pool := btree.NewPool(heap)
	insert := func(t *btree.Tree, key uint64, value uint64) {
		pool.Refill(btree.RecommendedPoolSize())
		pool.Reset()
		t.Insert(ops, key, value, pool)
		pool.Commit()
	}
	for t := 0; t < NumTables; t++ {
		m.tables[t] = btree.New(heap)
		m.recordOf[t] = make([]memsim.Addr, cfg.Relations)
		for id := 0; id < cfg.Relations; id++ {
			rec := heap.AllocLine()
			capacity := uint64(100 + r.Intn(100))
			heap.Store(rec+recTotal, capacity)
			heap.Store(rec+recAvail, capacity)
			heap.Store(rec+recPrice, uint64(100+r.Intn(400)))
			m.recordOf[t][id] = rec
			insert(m.tables[t], uint64(id), uint64(rec))
		}
	}
	m.headOf = make([]memsim.Addr, cfg.Customers)
	for c := 0; c < cfg.Customers; c++ {
		head := heap.AllocLine() // word 0 = list head, 0 = empty
		m.headOf[c] = head
		insert(m.customers, uint64(c), uint64(head))
	}
	return m, nil
}

// Config returns the (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// CheckConsistency verifies, quiescently, the scenario's conservation
// invariant: for every resource record, total − available equals the
// number of reservations of that record across all customer lists —
// i.e. no unit was double-booked or leaked — plus structural sanity of
// the indexes and the lists.
func (m *Manager) CheckConsistency() error {
	for t := 0; t < NumTables; t++ {
		if err := m.tables[t].CheckInvariants(); err != nil {
			return fmt.Errorf("vacation: %s index: %w", tableName[t], err)
		}
	}
	if err := m.customers.CheckInvariants(); err != nil {
		return fmt.Errorf("vacation: customer index: %w", err)
	}
	reserved := make([]map[uint64]uint64, NumTables)
	for t := range reserved {
		reserved[t] = map[uint64]uint64{}
	}
	for c, head := range m.headOf {
		node := memsim.Addr(m.heap.Load(head))
		steps := 0
		for node != 0 {
			if steps++; steps > 1<<20 {
				return fmt.Errorf("vacation: customer %d reservation list does not terminate", c)
			}
			t := m.heap.Load(node + resTable)
			id := m.heap.Load(node + resID)
			if t >= NumTables || id >= uint64(m.cfg.Relations) {
				return fmt.Errorf("vacation: customer %d holds bogus reservation (%d, %d)", c, t, id)
			}
			reserved[t][id]++
			node = memsim.Addr(m.heap.Load(node + resNext))
		}
	}
	for t := 0; t < NumTables; t++ {
		for id, rec := range m.recordOf[t] {
			total := m.heap.Load(rec + recTotal)
			avail := m.heap.Load(rec + recAvail)
			if avail > total {
				return fmt.Errorf("vacation: %s %d has avail %d > total %d", tableName[t], id, avail, total)
			}
			if got := total - avail; got != reserved[t][uint64(id)] {
				return fmt.Errorf("vacation: %s %d books %d units but %d reservations exist",
					tableName[t], id, got, reserved[t][uint64(id)])
			}
		}
	}
	return nil
}

// lookupRecord resolves a table row through its index.
func (m *Manager) lookupRecord(ops tm.Ops, t int, id uint64) (memsim.Addr, error) {
	v, ok := m.tables[t].Lookup(ops, id)
	if !ok {
		return 0, fmt.Errorf("vacation: %s %d missing from index", tableName[t], id)
	}
	return memsim.Addr(v), nil
}

// lookupHead resolves a customer's list-head cell through the index.
func (m *Manager) lookupHead(ops tm.Ops, c uint64) (memsim.Addr, error) {
	v, ok := m.customers.Lookup(ops, c)
	if !ok {
		return 0, fmt.Errorf("vacation: customer %d missing from index", c)
	}
	return memsim.Addr(v), nil
}
