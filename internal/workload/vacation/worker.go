package vacation

import (
	"fmt"

	"sihtm/internal/memsim"
	"sihtm/internal/rng"
	"sihtm/internal/tm"
	"sihtm/internal/workload/engine"
)

// TaskKind identifies a vacation task profile.
type TaskKind int

// The four profiles.
const (
	TaskBrowse TaskKind = iota
	TaskReserve
	TaskDeleteCustomer
	TaskUpdateTables
	NumTaskKinds
)

// String implements fmt.Stringer.
func (k TaskKind) String() string {
	switch k {
	case TaskBrowse:
		return "browse"
	case TaskReserve:
		return "reserve"
	case TaskDeleteCustomer:
		return "delete-customer"
	case TaskUpdateTables:
		return "update-tables"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// plannedItem is one (table, id) pair drawn for a task.
type plannedItem struct {
	table int
	id    uint64
}

// Worker drives one thread's share of the workload. Reservation-list
// nodes are managed by an engine.LinePool: spares are allocated outside
// transactions, aborted attempts rewind and reuse them, and nodes
// unlinked by a committed cancellation are recycled.
type Worker struct {
	m      *Manager
	sys    tm.System
	thread int
	r      *rng.Rand
	draw   engine.KeyDraw
	pool   *engine.LinePool

	items  []plannedItem
	prices []uint64

	// Executed counts committed tasks per profile.
	Executed [NumTaskKinds]uint64
}

// NewWorker builds the driver for one thread.
func (m *Manager) NewWorker(sys tm.System, thread int) (*Worker, error) {
	draw, err := engine.NewKeyDraw(m.cfg.Dist, m.cfg.queryRange())
	if err != nil {
		return nil, fmt.Errorf("vacation: %w", err)
	}
	return &Worker{
		m:      m,
		sys:    sys,
		thread: thread,
		r:      rng.Stream(m.cfg.Seed, uint64(thread)),
		draw:   draw,
		pool:   engine.NewLinePool(m.heap),
	}, nil
}

// Op draws one task from the mix and runs it to commit, returning its
// profile.
func (w *Worker) Op() TaskKind {
	cfg := w.m.cfg
	v := w.r.Intn(100)
	var k TaskKind
	switch {
	case v < cfg.BrowsePct:
		k = TaskBrowse
		w.browse()
	case v < cfg.BrowsePct+cfg.ReservePct:
		k = TaskReserve
		w.reserve()
	case v < cfg.BrowsePct+cfg.ReservePct+cfg.DeleteCustomerPct:
		k = TaskDeleteCustomer
		w.deleteCustomer()
	default:
		k = TaskUpdateTables
		w.updateTables()
	}
	w.Executed[k]++
	return k
}

// planItems draws QueryN (table, id) pairs outside the transaction.
func (w *Worker) planItems() {
	w.items = w.items[:0]
	for i := 0; i < w.m.cfg.QueryN; i++ {
		w.items = append(w.items, plannedItem{table: w.r.Intn(NumTables), id: w.draw.Draw(w.r)})
	}
}

// browse quotes QueryN items without booking: a read-only transaction
// whose footprint is QueryN index descents plus record lines — the
// shape SI-HTM's read-only fast path exists for.
func (w *Worker) browse() {
	w.planItems()
	w.sys.Atomic(w.thread, tm.KindReadOnly, func(ops tm.Ops) {
		for _, it := range w.items {
			rec, err := w.m.lookupRecord(ops, it.table, it.id)
			if err != nil {
				panic(err)
			}
			_ = ops.Read(rec + recAvail)
			_ = ops.Read(rec + recPrice)
		}
	})
}

// reserve examines QueryN items, picks the cheapest available item of
// each table among them, books one unit of each pick and appends the
// reservations to a customer's list — the paper's multi-table
// lookup-then-book transaction.
func (w *Worker) reserve() {
	w.planItems()
	customer := uint64(w.r.Intn(w.m.cfg.Customers))
	w.pool.Prepare(NumTables)
	w.sys.Atomic(w.thread, tm.KindUpdate, func(ops tm.Ops) {
		w.pool.Reset()
		type pick struct {
			rec   memsim.Addr
			avail uint64
			price uint64
			has   bool
			id    uint64
		}
		var best [NumTables]pick
		for _, it := range w.items {
			rec, err := w.m.lookupRecord(ops, it.table, it.id)
			if err != nil {
				panic(err)
			}
			avail := ops.Read(rec + recAvail)
			price := ops.Read(rec + recPrice)
			if avail == 0 {
				continue
			}
			b := &best[it.table]
			if !b.has || price < b.price {
				*b = pick{rec: rec, avail: avail, price: price, has: true, id: it.id}
			}
		}
		var head memsim.Addr
		var oldHead uint64
		for t := range best {
			b := best[t]
			if !b.has {
				continue
			}
			if head == 0 {
				h, err := w.m.lookupHead(ops, customer)
				if err != nil {
					panic(err)
				}
				head = h
				oldHead = ops.Read(head)
			}
			// Picks are one record per table, so b.avail is still this
			// transaction's consistent view of the record.
			ops.Write(b.rec+recAvail, b.avail-1)
			node := w.pool.Take()
			ops.Write(node+resTable, uint64(t))
			ops.Write(node+resID, b.id)
			ops.Write(node+resPrice, b.price)
			ops.Write(node+resNext, oldHead)
			ops.Write(head, uint64(node))
			oldHead = uint64(node)
		}
	})
	w.pool.Commit()
}

// deleteCustomer cancels every reservation of one customer: it walks
// the list, releases each booked unit and clears the list. The unlinked
// nodes are recycled after commit (safe: any concurrent writer of the
// same list also writes the head cell, a write-write conflict).
func (w *Worker) deleteCustomer() {
	customer := uint64(w.r.Intn(w.m.cfg.Customers))
	w.sys.Atomic(w.thread, tm.KindUpdate, func(ops tm.Ops) {
		w.pool.Reset()
		head, err := w.m.lookupHead(ops, customer)
		if err != nil {
			panic(err)
		}
		node := memsim.Addr(ops.Read(head))
		if node == 0 {
			return
		}
		for node != 0 {
			t := int(ops.Read(node + resTable))
			id := ops.Read(node + resID)
			rec, err := w.m.lookupRecord(ops, t, id)
			if err != nil {
				panic(err)
			}
			ops.Write(rec+recAvail, ops.Read(rec+recAvail)+1)
			w.pool.Release(node)
			node = memsim.Addr(ops.Read(node + resNext))
		}
		ops.Write(head, 0)
	})
	w.pool.Commit()
}

// updateTables re-prices QueryN rows of one table — the STAMP
// administrator task that makes resource records write-hot.
func (w *Worker) updateTables() {
	table := w.r.Intn(NumTables)
	w.items = w.items[:0]
	w.prices = w.prices[:0]
	for i := 0; i < w.m.cfg.QueryN; i++ {
		w.items = append(w.items, plannedItem{table: table, id: w.draw.Draw(w.r)})
		w.prices = append(w.prices, uint64(100+w.r.Intn(400)))
	}
	w.sys.Atomic(w.thread, tm.KindUpdate, func(ops tm.Ops) {
		for i, it := range w.items {
			rec, err := w.m.lookupRecord(ops, it.table, it.id)
			if err != nil {
				panic(err)
			}
			ops.Write(rec+recPrice, w.prices[i])
		}
	})
}
