package vacation

import (
	"sync"
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/htmtm"
	"sihtm/internal/memsim"
	"sihtm/internal/sgl"
	"sihtm/internal/sihtm"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

func testConfig() Config {
	return Config{
		Relations: 128,
		Customers: 32,
		QueryN:    4,
		Seed:      11,
	}
}

func newManager(t *testing.T, cfg Config) (*Manager, *htm.Machine) {
	t.Helper()
	heap := memsim.NewHeapLines(cfg.withDefaults().HeapLinesNeeded())
	m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
	mgr, err := NewManager(heap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mgr, m
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Relations: -1, Customers: 1, QueryN: 1, QueryRangePct: 100, BrowsePct: 100},
		{Relations: 1, Customers: 1, QueryN: 1, QueryRangePct: 101, BrowsePct: 100},
		{Relations: 1, Customers: 1, QueryN: 1, QueryRangePct: 50, BrowsePct: 99},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if err := testConfig().withDefaults().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// A fresh database must satisfy the conservation invariant (nothing
// booked) and respond to quotes.
func TestPopulationConsistent(t *testing.T) {
	mgr, _ := newManager(t, testConfig())
	if err := mgr.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// The full mix on the serial oracle must preserve conservation exactly.
func TestMixOnSGL(t *testing.T) {
	mgr, m := newManager(t, testConfig())
	sys := sgl.NewSystem(m, 1)
	w, err := mgr.NewWorker(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		w.Op()
	}
	var total uint64
	for _, n := range w.Executed {
		total += n
	}
	if total != 4000 {
		t.Fatalf("executed %d tasks, want 4000", total)
	}
	for k := TaskKind(0); k < NumTaskKinds; k++ {
		if w.Executed[k] == 0 {
			t.Errorf("profile %s never ran in 4000 tasks", k)
		}
	}
	if err := mgr.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Concurrent workers on SI-HTM and on plain HTM must preserve the
// conservation invariant: bookings and cancellations of the same
// records serialize through write-write conflicts.
func TestConcurrentConsistency(t *testing.T) {
	for _, sysName := range []string{"si-htm", "htm"} {
		t.Run(sysName, func(t *testing.T) {
			cfg := testConfig()
			cfg.Relations = 64
			cfg.Customers = 8
			cfg.QueryRangePct = 25 // force contention
			mgr, m := newManager(t, cfg)
			const threads = 4
			var sys tm.System
			if sysName == "si-htm" {
				sys = sihtm.NewSystem(m, threads, sihtm.Config{})
			} else {
				sys = htmtm.NewSystem(m, threads, htmtm.Config{})
			}
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					w, err := mgr.NewWorker(sys, th)
					if err != nil {
						panic(err)
					}
					for i := 0; i < 500; i++ {
						w.Op()
					}
				}(th)
			}
			wg.Wait()
			if err := mgr.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
			if sys.Collector().Snapshot().Commits == 0 {
				t.Fatal("no commits recorded")
			}
		})
	}
}

// Workers must be deterministic per (seed, thread): two managers over
// identical configs draw identical task sequences.
func TestWorkerDeterminism(t *testing.T) {
	mgr1, m1 := newManager(t, testConfig())
	mgr2, m2 := newManager(t, testConfig())
	sys1 := sgl.NewSystem(m1, 1)
	sys2 := sgl.NewSystem(m2, 1)
	w1, err := mgr1.NewWorker(sys1, 0)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := mgr2.NewWorker(sys2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if k1, k2 := w1.Op(), w2.Op(); k1 != k2 {
			t.Fatalf("task %d: %s vs %s", i, k1, k2)
		}
	}
	if w1.Executed != w2.Executed {
		t.Fatalf("profiles diverged: %v vs %v", w1.Executed, w2.Executed)
	}
}
