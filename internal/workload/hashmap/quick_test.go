package hashmap_test

import (
	"testing"
	"testing/quick"

	"sihtm/internal/memsim"
	"sihtm/internal/rng"
	"sihtm/internal/workload/hashmap"
)

// Property: a random single-threaded operation sequence on the
// transactional map behaves exactly like Go's built-in map.
func TestMapMatchesGoMapProperty(t *testing.T) {
	type op struct {
		Kind  uint8 // 0 = lookup, 1 = insert, 2 = remove
		Key   uint8
		Value uint16
	}
	f := func(seed uint16, ops []op) bool {
		heap := memsim.NewHeapLines(1 << 12)
		m := hashmap.New(heap, 4)
		shadow := make(map[uint64]uint64)
		po := plainOps{heap}
		free := heap.AllocLine()
		for _, o := range ops {
			key := uint64(o.Key % 32)
			switch o.Kind % 3 {
			case 0:
				v, ok := m.Lookup(po, key)
				sv, sok := shadow[key]
				if ok != sok || (ok && v != sv) {
					return false
				}
			case 1:
				consumed := m.Insert(po, key, uint64(o.Value), free)
				_, existed := shadow[key]
				if consumed == existed {
					return false // consumed iff the key was absent
				}
				shadow[key] = uint64(o.Value)
				if consumed {
					free = heap.AllocLine()
				}
			case 2:
				node := m.Remove(po, key)
				_, existed := shadow[key]
				if (node != 0) != existed {
					return false
				}
				delete(shadow, key)
			}
		}
		if m.Size() != len(shadow) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: population size always equals half the key space, for any
// geometry.
func TestPopulationSizeProperty(t *testing.T) {
	f := func(bRaw, eRaw uint8) bool {
		b := int(bRaw)%16 + 1
		e := int(eRaw)%12 + 1
		cfg := hashmap.BenchConfig{Buckets: b, ElementsPerBucket: e, ReadOnlyPercent: 50}
		heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
		bench, err := hashmap.NewBenchmark(heap, cfg)
		if err != nil {
			return false
		}
		return bench.Map.Size() == int(cfg.KeySpace()/2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: WalkBounded's cycle detection never fires on well-formed
// maps built by random inserts.
func TestWalkBoundedOnAcyclicMapsProperty(t *testing.T) {
	r := rng.New(3)
	f := func(nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		heap := memsim.NewHeapLines(1 << 12)
		m := hashmap.New(heap, 3)
		po := plainOps{heap}
		for i := 0; i < n; i++ {
			m.Insert(po, uint64(r.Intn(100)), 1, heap.AllocLine())
		}
		keys, ok := m.WalkBounded(n + 1)
		return ok && len(keys) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
