package hashmap_test

import (
	"sync"
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/htmtm"
	"sihtm/internal/memsim"
	"sihtm/internal/sihtm"
	"sihtm/internal/tm"
	"sihtm/internal/tmtest"
	"sihtm/internal/topology"
	"sihtm/internal/workload/hashmap"
)

// plainOps runs map operations without a transaction (single-threaded
// tests).
type plainOps struct{ heap *memsim.Heap }

func (o plainOps) Read(a memsim.Addr) uint64     { return o.heap.Load(a) }
func (o plainOps) Write(a memsim.Addr, v uint64) { o.heap.Store(a, v) }

func TestBasicOperations(t *testing.T) {
	heap := memsim.NewHeapLines(1 << 10)
	m := hashmap.New(heap, 8)
	ops := plainOps{heap}

	if _, ok := m.Lookup(ops, 1); ok {
		t.Fatal("lookup in empty map succeeded")
	}
	n1 := heap.AllocLine()
	if !m.Insert(ops, 1, 10, n1) {
		t.Fatal("insert of fresh key did not consume the node")
	}
	if v, ok := m.Lookup(ops, 1); !ok || v != 10 {
		t.Fatalf("lookup(1) = %d,%v", v, ok)
	}
	// Updating an existing key must not consume the spare node.
	n2 := heap.AllocLine()
	if m.Insert(ops, 1, 11, n2) {
		t.Fatal("insert of existing key consumed the node")
	}
	if v, _ := m.Lookup(ops, 1); v != 11 {
		t.Fatalf("value after update = %d", v)
	}
	if m.Size() != 1 {
		t.Fatalf("size = %d, want 1", m.Size())
	}
	if got := m.Remove(ops, 1); got != n1 {
		t.Fatalf("remove returned %d, want node %d", got, n1)
	}
	if _, ok := m.Lookup(ops, 1); ok {
		t.Fatal("lookup after remove succeeded")
	}
	if m.Remove(ops, 1) != 0 {
		t.Fatal("second remove found something")
	}
}

func TestChainOperations(t *testing.T) {
	heap := memsim.NewHeapLines(1 << 12)
	m := hashmap.New(heap, 1) // single bucket: everything chains
	ops := plainOps{heap}
	const n = 50
	for k := uint64(0); k < n; k++ {
		m.Insert(ops, k, k, heap.AllocLine())
	}
	if m.Size() != n {
		t.Fatalf("size = %d, want %d", m.Size(), n)
	}
	// Remove from middle, head and tail of the chain.
	for _, k := range []uint64{25, 0, n - 1} {
		if m.Remove(ops, k) == 0 {
			t.Fatalf("remove(%d) missed", k)
		}
	}
	if m.Size() != n-3 {
		t.Fatalf("size = %d, want %d", m.Size(), n-3)
	}
	for k := uint64(0); k < n; k++ {
		_, ok := m.Lookup(ops, k)
		wantPresent := k != 25 && k != 0 && k != n-1
		if ok != wantPresent {
			t.Fatalf("lookup(%d) = %v, want %v", k, ok, wantPresent)
		}
	}
}

func TestBenchmarkPopulation(t *testing.T) {
	cfg := hashmap.BenchConfig{Buckets: 16, ElementsPerBucket: 10, ReadOnlyPercent: 90}
	heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
	b, err := hashmap.NewBenchmark(heap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSize := int(cfg.KeySpace() / 2)
	if got := b.Map.Size(); got != wantSize {
		t.Fatalf("initial size = %d, want %d", got, wantSize)
	}
	// Even keys present, odd keys absent.
	ops := plainOps{heap}
	for key := uint64(0); key < 20; key++ {
		_, ok := b.Map.Lookup(ops, key)
		if ok != (key%2 == 0) {
			t.Fatalf("lookup(%d) = %v", key, ok)
		}
	}
}

func TestBenchConfigValidation(t *testing.T) {
	bad := []hashmap.BenchConfig{
		{Buckets: 0, ElementsPerBucket: 1},
		{Buckets: 1, ElementsPerBucket: 0},
		{Buckets: 1, ElementsPerBucket: 1, ReadOnlyPercent: 101},
		{Buckets: 1, ElementsPerBucket: 1, ReadOnlyPercent: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated", i)
		}
	}
	heap := memsim.NewHeapLines(64)
	if _, err := hashmap.NewBenchmark(heap, bad[0]); err == nil {
		t.Error("NewBenchmark accepted invalid config")
	}
}

// The workload must keep the map coherent under every system: after a
// concurrent run, every surviving key is found, sizes are sane, and the
// steady-state insert/remove pairing holds approximately.
func TestWorkloadUnderEverySystem(t *testing.T) {
	for _, f := range tmtest.StandardFactories(0) {
		t.Run(f.Name, func(t *testing.T) {
			cfg := hashmap.BenchConfig{Buckets: 8, ElementsPerBucket: 6, ReadOnlyPercent: 50, Seed: 7}
			heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
			b, err := hashmap.NewBenchmark(heap, cfg)
			if err != nil {
				t.Fatal(err)
			}
			initial := b.Map.Size()
			sys := f.New(heap, 4)
			var wg sync.WaitGroup
			for id := 0; id < 4; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					w := b.NewWorker(sys, id)
					for i := 0; i < 300; i++ {
						w.Op()
					}
				}(id)
			}
			wg.Wait()
			// Insert/remove alternate per thread, so the size drifts by at
			// most one pending insert per thread.
			size := b.Map.Size()
			if size < initial-4 || size > initial+4 {
				t.Errorf("size drifted: %d → %d", initial, size)
			}
			// No key duplicated.
			seen := map[uint64]bool{}
			for _, k := range b.Map.Keys() {
				if seen[k] {
					t.Fatalf("duplicate key %d", k)
				}
				seen[k] = true
			}
			s := sys.Collector().Snapshot()
			if s.Commits != 4*300 {
				t.Errorf("commits = %d, want %d", s.Commits, 4*300)
			}
		})
	}
}

// Large read-only lookups under SI-HTM must not abort even with a tiny
// TMCAM, while the same lookups under plain HTM must blow capacity — the
// heart of Figure 6.
func TestLargeLookupCapacityContrast(t *testing.T) {
	cfg := hashmap.BenchConfig{Buckets: 1, ElementsPerBucket: 100, ReadOnlyPercent: 100}
	heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
	b, err := hashmap.NewBenchmark(heap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(2, 1), TMCAMLines: 64})
	missKey := uint64(1) // odd → absent → full-chain traversal (100 lines)

	si := sihtm.NewSystem(m, 1, sihtm.Config{})
	si.Atomic(0, tm.KindReadOnly, func(ops tm.Ops) {
		if _, ok := b.Map.Lookup(ops, missKey); ok {
			t.Fatal("missing key found")
		}
	})
	if s := si.Collector().Snapshot(); s.TotalAborts() != 0 {
		t.Errorf("SI-HTM large lookup aborted %d times", s.TotalAborts())
	}

	htmSys := htmtm.NewSystem(m, 2, htmtm.Config{Retries: 3})
	htmSys.Atomic(1, tm.KindReadOnly, func(ops tm.Ops) {
		b.Map.Lookup(ops, missKey)
	})
	if s := htmSys.Collector().Snapshot(); s.Fallbacks != 1 {
		t.Errorf("plain HTM large lookup fallbacks = %d, want 1 (capacity)", s.Fallbacks)
	}
}
