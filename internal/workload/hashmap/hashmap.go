// Package hashmap implements the paper's §4.1 micro-benchmark: a
// transactional chained hash map over the simulated heap, with the two
// knobs the paper sweeps — transaction footprint (average chain length:
// ~200 nodes for the "large" mode, ~50 for the "short" mode) and
// contention (1000 buckets for low contention, 10 for high).
//
// Memory layout matches the footprint accounting the paper relies on:
// every chain node occupies exactly one cache line, so traversing a chain
// of n nodes reads n lines; bucket heads are padded to one line each so
// that only same-bucket operations contend.
package hashmap

import (
	"fmt"

	"sihtm/internal/memsim"
	"sihtm/internal/rng"
	"sihtm/internal/tm"
)

// Node layout (one cache line): word 0 = key, word 1 = value, word 2 =
// next-node address (0 = end of chain).
const (
	nodeKey   = 0
	nodeValue = 1
	nodeNext  = 2
)

// Map is a fixed-bucket transactional hash map. The structure itself
// (bucket array) is immutable after New; all key/value/chain state lives
// in the heap and is accessed through tm.Ops.
type Map struct {
	heap    *memsim.Heap
	buckets []memsim.Addr // head-pointer word of each bucket, one line per bucket
}

// New creates a map with the given bucket count.
func New(heap *memsim.Heap, buckets int) *Map {
	if buckets <= 0 {
		panic(fmt.Sprintf("hashmap: bucket count must be positive, got %d", buckets))
	}
	m := &Map{heap: heap, buckets: make([]memsim.Addr, buckets)}
	for i := range m.buckets {
		m.buckets[i] = heap.AllocLine()
	}
	return m
}

// Buckets returns the bucket count.
func (m *Map) Buckets() int { return len(m.buckets) }

// bucketOf hashes a key to its bucket head address.
func (m *Map) bucketOf(key uint64) memsim.Addr {
	// Fibonacci scrambling so sequential keys spread across buckets.
	h := key * 0x9e3779b97f4a7c15
	return m.buckets[h%uint64(len(m.buckets))]
}

// Lookup returns the value stored under key.
func (m *Map) Lookup(ops tm.Ops, key uint64) (uint64, bool) {
	node := memsim.Addr(ops.Read(m.bucketOf(key)))
	for node != 0 {
		if ops.Read(node+nodeKey) == key {
			return ops.Read(node + nodeValue), true
		}
		node = memsim.Addr(ops.Read(node + nodeNext))
	}
	return 0, false
}

// Insert stores value under key, using freeNode (a line-aligned spare
// node) if the key is absent. It reports whether freeNode was consumed;
// if the key already existed only its value is updated. freeNode must be
// allocated outside the transaction so the body stays idempotent.
func (m *Map) Insert(ops tm.Ops, key, value uint64, freeNode memsim.Addr) bool {
	head := m.bucketOf(key)
	node := memsim.Addr(ops.Read(head))
	for node != 0 {
		if ops.Read(node+nodeKey) == key {
			ops.Write(node+nodeValue, value)
			return false
		}
		node = memsim.Addr(ops.Read(node + nodeNext))
	}
	ops.Write(freeNode+nodeKey, key)
	ops.Write(freeNode+nodeValue, value)
	ops.Write(freeNode+nodeNext, ops.Read(head))
	ops.Write(head, uint64(freeNode))
	return true
}

// Remove deletes key, returning the unlinked node's address (0 if the key
// was absent). The caller may recycle the node after the transaction
// commits.
//
// Remove promotes its read of the victim node (a same-value write of the
// victim's next pointer) — the paper's §2.1 read-promotion fix. Without
// it, two concurrent removes of adjacent nodes form a write skew that
// snapshot isolation admits: each unlink lands on a node the other just
// detached, leaving one victim still reachable, which corrupts the chain
// once the "removed" node is recycled. The promotion turns that skew into
// a write-write conflict on the victim's cache line, which SI must abort.
// This is what makes the benchmark serializable under SI, as the paper
// requires of its workloads.
func (m *Map) Remove(ops tm.Ops, key uint64) memsim.Addr {
	head := m.bucketOf(key)
	prev := head // prev points at the word holding the current link
	node := memsim.Addr(ops.Read(head))
	for node != 0 {
		next := memsim.Addr(ops.Read(node + nodeNext))
		if ops.Read(node+nodeKey) == key {
			ops.Write(node+nodeNext, uint64(next)) // read promotion (see above)
			if prev == head {
				ops.Write(head, uint64(next))
			} else {
				ops.Write(prev+nodeNext, uint64(next))
			}
			return node
		}
		prev = node
		node = next
	}
	return 0
}

// Size counts all elements non-transactionally (setup/verification only).
func (m *Map) Size() int {
	n := 0
	for _, head := range m.buckets {
		node := memsim.Addr(m.heap.Load(head))
		for node != 0 {
			n++
			node = memsim.Addr(m.heap.Load(node + nodeNext))
		}
	}
	return n
}

// Keys returns all stored keys non-transactionally (verification only).
func (m *Map) Keys() []uint64 {
	keys, _ := m.WalkBounded(-1)
	return keys
}

// WalkBounded collects all keys, giving up after maxSteps chain hops
// (maxSteps < 0 means unbounded). ok is false if a chain did not
// terminate within the bound — i.e. the structure contains a cycle.
// Verification helper; non-transactional.
func (m *Map) WalkBounded(maxSteps int) (keys []uint64, ok bool) {
	steps := 0
	for _, head := range m.buckets {
		node := memsim.Addr(m.heap.Load(head))
		for node != 0 {
			if maxSteps >= 0 && steps >= maxSteps {
				return keys, false
			}
			steps++
			keys = append(keys, m.heap.Load(node+nodeKey))
			node = memsim.Addr(m.heap.Load(node + nodeNext))
		}
	}
	return keys, true
}

// Benchmark is the paper's workload driver around Map: a configurable mix
// of lookups (read-only transactions) and insert/remove pairs (update
// transactions) over a key space sized so chains keep their configured
// average length.
type Benchmark struct {
	Map *Map
	cfg BenchConfig
}

// BenchConfig parameterises the benchmark.
type BenchConfig struct {
	// Buckets is the bucket count: 1000 in the paper's low-contention
	// runs, 10 in the high-contention runs.
	Buckets int
	// ElementsPerBucket is the average chain length: ≈200 ("large
	// transaction footprint") or ≈50 ("short").
	ElementsPerBucket int
	// ReadOnlyPercent is the share of lookup transactions: 90 or 50.
	ReadOnlyPercent int
	// Seed derives every worker's per-thread op stream (rng.Stream);
	// the initial population is deterministic regardless (even keys
	// present, odd keys absent).
	Seed uint64
}

// Validate checks the configuration.
func (c BenchConfig) Validate() error {
	if c.Buckets <= 0 || c.ElementsPerBucket <= 0 {
		return fmt.Errorf("hashmap: buckets and elements must be positive (%d, %d)",
			c.Buckets, c.ElementsPerBucket)
	}
	if c.ReadOnlyPercent < 0 || c.ReadOnlyPercent > 100 {
		return fmt.Errorf("hashmap: read-only percent %d out of range", c.ReadOnlyPercent)
	}
	return nil
}

// KeySpace is the range keys are drawn from: twice the initial population
// so half the lookups miss (and traverse the full chain — the worst-case
// footprint) and inserts/removes keep the size in steady state.
func (c BenchConfig) KeySpace() uint64 {
	return 2 * uint64(c.Buckets) * uint64(c.ElementsPerBucket)
}

// HeapLinesNeeded estimates the heap the benchmark needs: bucket heads,
// initial nodes, plus slack for transient inserts.
func (c BenchConfig) HeapLinesNeeded() int {
	initial := c.Buckets * c.ElementsPerBucket
	return c.Buckets + 2*initial + 4096
}

// NewBenchmark builds the map and populates every other key of the key
// space (so average chain length equals ElementsPerBucket).
func NewBenchmark(heap *memsim.Heap, cfg BenchConfig) (*Benchmark, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := New(heap, cfg.Buckets)
	b := &Benchmark{Map: m, cfg: cfg}
	// Populate non-transactionally: even keys present, odd keys absent.
	space := cfg.KeySpace()
	for key := uint64(0); key < space; key += 2 {
		head := m.bucketOf(key)
		node := heap.AllocLine()
		heap.Store(node+nodeKey, key)
		heap.Store(node+nodeValue, key*10)
		heap.Store(node+nodeNext, heap.Load(head))
		heap.Store(head, uint64(node))
	}
	return b, nil
}

// Config returns the benchmark configuration.
func (b *Benchmark) Config() BenchConfig { return b.cfg }

// Worker is one thread's benchmark state.
type Worker struct {
	b          *Benchmark
	sys        tm.System
	thread     int
	r          *rng.Rand
	spare      memsim.Addr // pre-allocated node for the next insert
	lastInsert uint64      // key of the last insert, removed next
	haveInsert bool
}

// NewWorker creates the per-thread driver. Its generator is thread's
// stream of the benchmark seed (rng.Stream), so one BenchConfig.Seed
// reproduces every worker's key/op sequence — the same derivation
// every workload in the repository uses.
func (b *Benchmark) NewWorker(sys tm.System, thread int) *Worker {
	return &Worker{b: b, sys: sys, thread: thread, r: rng.Stream(b.cfg.Seed, uint64(thread))}
}

// Op runs exactly one transaction of the configured mix: a lookup with
// probability ReadOnlyPercent, otherwise an insert — or, following the
// paper, a remove if this thread's previous update was an insert.
func (w *Worker) Op() {
	m := w.b.Map
	if w.r.Intn(100) < w.b.cfg.ReadOnlyPercent {
		key := w.r.Uint64() % w.b.cfg.KeySpace()
		w.sys.Atomic(w.thread, tm.KindReadOnly, func(ops tm.Ops) {
			m.Lookup(ops, key)
		})
		return
	}
	if w.haveInsert {
		key := w.lastInsert
		var removed memsim.Addr
		w.sys.Atomic(w.thread, tm.KindUpdate, func(ops tm.Ops) {
			removed = m.Remove(ops, key)
		})
		if removed != 0 && w.spare == 0 {
			w.spare = removed // recycle after commit
		}
		w.haveInsert = false
		return
	}
	key := w.r.Uint64() % w.b.cfg.KeySpace()
	if w.spare == 0 {
		w.spare = w.b.Map.heap.AllocLine()
	}
	spare := w.spare
	consumed := false
	w.sys.Atomic(w.thread, tm.KindUpdate, func(ops tm.Ops) {
		consumed = m.Insert(ops, key, key*10, spare)
	})
	if consumed {
		w.spare = 0
		// Only a real insertion schedules the paired remove; an update of
		// an existing key must not drain the pre-populated map.
		w.lastInsert = key
		w.haveInsert = true
	}
}
