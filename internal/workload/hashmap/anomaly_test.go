package hashmap_test

import (
	"sync"
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/sihtm"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
	"sihtm/internal/workload/hashmap"
)

// Regression test for the SI remove/remove write skew: without read
// promotion in Remove, two concurrent removes of nearby nodes in one
// chain can both commit under SI-HTM, leaving a "removed" node linked;
// recycling that node then weaves a cycle into the chain. The promotion
// turns the skew into a write-write conflict. This test hammers exactly
// that interleaving and verifies structural integrity after every round.
func TestConcurrentRemovesKeepChainsIntact(t *testing.T) {
	heap := memsim.NewHeapLines(1 << 12)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(2, 1)})
	hm := hashmap.New(heap, 1) // single bucket: one shared chain
	sys := sihtm.NewSystem(m, 2, sihtm.Config{})

	const n = 12
	ops := plainOps{heap}
	nodes := make([]memsim.Addr, n)
	for k := uint64(0); k < n; k++ {
		nodes[k] = heap.AllocLine()
		hm.Insert(ops, k, k, nodes[k])
	}

	for round := 0; round < 200; round++ {
		// Two adjacent-in-chain keys removed concurrently. Chain order is
		// reverse insertion order, so keys k and k+1 are adjacent.
		k := uint64(round % (n - 1))
		var removed [2]memsim.Addr
		var wg sync.WaitGroup
		wg.Add(2)
		for i := 0; i < 2; i++ {
			go func(i int) {
				defer wg.Done()
				key := k + uint64(i)
				sys.Atomic(i, tm.KindUpdate, func(o tm.Ops) {
					removed[i] = hm.Remove(o, key)
				})
			}(i)
		}
		wg.Wait()

		if removed[0] == 0 || removed[1] == 0 {
			t.Fatalf("round %d: remove missed a present key", round)
		}
		// Structural integrity: the chain must terminate within n steps,
		// and neither removed key may be reachable.
		verifyChain(t, hm, n, []uint64{k, k + 1})
		if got := hm.Size(); got != n-2 {
			t.Fatalf("round %d: size = %d, want %d", round, got, n-2)
		}
		// Reinsert the removed nodes (recycling them, as the workload does).
		hm.Insert(ops, k, k, removed[0])
		hm.Insert(ops, k+1, k+1, removed[1])
	}
}

// verifyChain walks every bucket with a step bound, failing on cycles or
// on reachable removed keys.
func verifyChain(t *testing.T, m *hashmap.Map, maxSteps int, removedKeys []uint64) {
	t.Helper()
	walked, ok := m.WalkBounded(maxSteps + 2)
	if !ok {
		t.Fatal("chain walk exceeded bound: cycle in chain")
	}
	keys := make(map[uint64]bool)
	for _, k := range walked {
		if keys[k] {
			t.Fatalf("key %d reachable twice: chain corrupted", k)
		}
		keys[k] = true
	}
	for _, k := range removedKeys {
		if keys[k] {
			t.Fatalf("removed key %d still reachable (write-skew unlink lost)", k)
		}
	}

}
