//go:build unix

package loadgen

import "syscall"

// raiseFDLimit lifts the soft file-descriptor limit to the hard limit:
// ten thousand connections need ten thousand descriptors, and default
// soft limits are often 1024. Best effort — a failure just means big
// ladders hit EMFILE, which surfaces as a dial error.
func raiseFDLimit() {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
}

// RaiseFDLimit is the exported form, for server processes that accept
// the many-connection side of the same ladder.
func RaiseFDLimit() { raiseFDLimit() }
