// Package loadgen drives a wire-protocol server with an open-loop,
// many-connection workload: arrivals are scheduled by a rate process
// (Poisson or uniform), not by reply receipt, so a slow server faces a
// growing backlog exactly as it would from real independent clients —
// the closed-loop drivers of the workload engine can never show that,
// because each blocked session stops offering load the moment the
// server stalls (coordinated omission).
//
// Latency accounting is coordinated-omission-safe by construction: the
// request id of every frame is its *scheduled* send time (nanoseconds
// since the run epoch), stamped when the arrival was drawn, not when
// the send syscall finally happened. The server echoes ids verbatim,
// so the receiver computes latency as now − id with no per-request
// bookkeeping: a request that sat behind a backlog is charged its full
// queueing delay even though the sender fell behind schedule.
package loadgen

import (
	"fmt"
	"math"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/stats"
	"sihtm/internal/trace"
)

// Arrival is the open-loop arrival process: Rate operations per second
// in total, split evenly across the connections, with Poisson
// (exponential gaps) or uniform (constant gaps) inter-arrival times.
type Arrival struct {
	// Process is "poisson" or "uniform".
	Process string
	// Rate is the total offered operation rate per second.
	Rate float64
}

// ParseArrival parses the CLI form "poisson:RATE" or "uniform:RATE".
func ParseArrival(s string) (Arrival, error) {
	proc, rateStr, ok := strings.Cut(s, ":")
	if !ok {
		return Arrival{}, fmt.Errorf("loadgen: arrival %q: want process:rate (e.g. poisson:20000)", s)
	}
	if proc != "poisson" && proc != "uniform" {
		return Arrival{}, fmt.Errorf("loadgen: unknown arrival process %q (want poisson or uniform)", proc)
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate <= 0 || math.IsInf(rate, 0) {
		return Arrival{}, fmt.Errorf("loadgen: arrival rate %q: want a positive ops/sec", rateStr)
	}
	return Arrival{Process: proc, Rate: rate}, nil
}

// String renders the CLI form back.
func (a Arrival) String() string { return fmt.Sprintf("%s:%g", a.Process, a.Rate) }

// Config shapes one open-loop run.
type Config struct {
	// Addr is the server address.
	Addr string
	// Conns is the connection count; each connection carries an equal
	// share of the arrival rate with its own sender and receiver.
	Conns int
	// Arrival is the offered-load process.
	Arrival Arrival
	// Keys is the populated keyspace size; request keys are drawn
	// uniformly below it, so the RMW/GET mix never inserts fresh keys
	// and the server's population-conservation check stays valid.
	Keys int
	// ReadFrac is the GET share of the mix (default 0.5); the rest are
	// server-side read-modify-writes.
	ReadFrac float64
	// Warmup and Measure carve the measurement window: counters and the
	// latency histogram are snapshotted at both edges and differenced.
	Warmup, Measure time.Duration
	// Seed perturbs the per-connection arrival and key streams.
	Seed uint64
	// DialConcurrency bounds parallel dials during ramp-up (default 64).
	DialConcurrency int
	// AtWindow, when set, is called synchronously at the two window
	// edges (start=true at warmup end, start=false at measure end) so a
	// caller can snapshot server-side stats over exactly the client's
	// window.
	AtWindow func(start bool)
	// TraceEvery, when positive, stamps every n-th request with a fresh
	// trace id (head-based sampling; 1 traces everything). The id rides
	// the frame's trace extension — the request id keeps carrying the
	// scheduled send time, so coordinated-omission accounting is
	// untouched.
	TraceEvery int
	// TraceRing, when set alongside TraceEvery, receives one KClient
	// span per traced reply: the client-observed request latency under
	// the same trace id the server's stage spans carry.
	TraceRing *trace.Ring
}

// Result is one run's measurement, all counters restricted to the
// measurement window.
type Result struct {
	// Conns and Offered echo the config.
	Conns   int
	Offered float64
	// Elapsed is the measured window length.
	Elapsed time.Duration
	// Sent, Replies and Errs count requests written, successful replies
	// and TErr replies during the window.
	Sent, Replies, Errs uint64
	// Throughput is Replies per second.
	Throughput float64
	// Hist is the client-observed latency histogram of the window,
	// coordinated-omission-safe (latency runs from the scheduled
	// arrival, not the actual send).
	Hist stats.HistogramSnapshot
	// MaxLag is the worst schedule slip any sender observed: how far
	// behind its arrival schedule the send loop fell. Large lags mean
	// the generator itself (not the server) was the bottleneck —
	// latency accounting stays correct, but the offered rate was not
	// actually sustained.
	MaxLag time.Duration
}

// gen is one run's shared state.
type gen struct {
	cfg   Config
	epoch time.Time
	stop  chan struct{}

	// sampler/ids drive head-based trace sampling (nil when TraceEvery
	// is zero); ring receives client spans (may be nil even when
	// sampling — ids still ship so the server traces its side).
	sampler *trace.Sampler
	ids     *trace.IDGen
	ring    *trace.Ring

	hist    stats.Histogram
	sent    atomic.Uint64
	replies atomic.Uint64
	errs    atomic.Uint64
	maxLag  atomic.Int64

	failOnce sync.Once
	failErr  error
	stopped  atomic.Bool
}

// fail records the first transport error not caused by shutdown.
func (g *gen) fail(err error) {
	if g.stopped.Load() {
		return
	}
	g.failOnce.Do(func() { g.failErr = err })
}

// Run executes one open-loop measurement: dial, ramp, warm up, measure,
// tear down.
func Run(cfg Config) (Result, error) {
	if cfg.Conns <= 0 {
		return Result{}, fmt.Errorf("loadgen: needs a positive connection count")
	}
	if cfg.Arrival.Rate <= 0 {
		return Result{}, fmt.Errorf("loadgen: needs a positive arrival rate")
	}
	if cfg.Keys <= 0 {
		return Result{}, fmt.Errorf("loadgen: needs a positive keyspace")
	}
	if cfg.ReadFrac == 0 {
		cfg.ReadFrac = 0.5
	}
	if cfg.DialConcurrency <= 0 {
		cfg.DialConcurrency = 64
	}
	raiseFDLimit()

	conns, err := dialAll(cfg)
	if err != nil {
		for _, nc := range conns {
			nc.Close()
		}
		return Result{}, err
	}
	// Collect setup garbage (dials, buffers, any caller allocations)
	// before traffic starts: the send/receive hot loops are
	// allocation-free, so paying the collection here makes a GC cycle —
	// a multi-millisecond stall that pollutes the tail of a CO-safe
	// latency window — unlikely to fire mid-measurement.
	runtime.GC()

	g := &gen{cfg: cfg, stop: make(chan struct{}), epoch: time.Now()}
	if cfg.TraceEvery > 0 {
		g.sampler = trace.NewSampler(cfg.TraceEvery)
		g.ids = trace.NewIDGen(cfg.Seed ^ uint64(g.epoch.UnixNano()))
		g.ring = cfg.TraceRing
	}
	var wg sync.WaitGroup
	for i, nc := range conns {
		wg.Add(2)
		c := newLoadConn(g, nc, i)
		go func() { defer wg.Done(); c.sendLoop() }()
		go func() { defer wg.Done(); c.recvLoop() }()
	}

	time.Sleep(cfg.Warmup)
	h0 := g.hist.Snapshot()
	s0, r0, e0 := g.sent.Load(), g.replies.Load(), g.errs.Load()
	if cfg.AtWindow != nil {
		cfg.AtWindow(true)
	}
	start := time.Now()
	time.Sleep(cfg.Measure)
	h1 := g.hist.Snapshot()
	s1, r1, e1 := g.sent.Load(), g.replies.Load(), g.errs.Load()
	elapsed := time.Since(start)
	if cfg.AtWindow != nil {
		cfg.AtWindow(false)
	}

	// Teardown: stop senders, then close connections to unblock
	// receivers (in-flight replies are abandoned — open loop).
	g.stopped.Store(true)
	close(g.stop)
	for _, nc := range conns {
		nc.Close()
	}
	wg.Wait()
	if g.failErr != nil {
		return Result{}, fmt.Errorf("loadgen: %w", g.failErr)
	}

	res := Result{
		Conns:   cfg.Conns,
		Offered: cfg.Arrival.Rate,
		Elapsed: elapsed,
		Sent:    s1 - s0,
		Replies: r1 - r0,
		Errs:    e1 - e0,
		Hist:    h1.Sub(h0),
		MaxLag:  time.Duration(g.maxLag.Load()),
	}
	res.Throughput = float64(res.Replies) / elapsed.Seconds()
	return res, nil
}

// dialAll ramps up the connection set with bounded dial parallelism.
func dialAll(cfg Config) ([]net.Conn, error) {
	conns := make([]net.Conn, cfg.Conns)
	sem := make(chan struct{}, cfg.DialConcurrency)
	var wg sync.WaitGroup
	var dialErr atomic.Pointer[error]
	for i := range conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if dialErr.Load() != nil {
				return
			}
			nc, err := net.DialTimeout("tcp", cfg.Addr, 10*time.Second)
			if err != nil {
				err = fmt.Errorf("loadgen: dialing conn %d/%d: %w", i+1, cfg.Conns, err)
				dialErr.CompareAndSwap(nil, &err)
				return
			}
			conns[i] = nc
		}(i)
	}
	wg.Wait()
	if ep := dialErr.Load(); ep != nil {
		live := conns[:0]
		for _, nc := range conns {
			if nc != nil {
				live = append(live, nc)
			}
		}
		return live, *ep
	}
	return conns, nil
}
