//go:build !unix

package loadgen

// raiseFDLimit is a no-op where rlimits do not exist.
func raiseFDLimit() {}

// RaiseFDLimit is the exported form; see fdlimit_unix.go.
func RaiseFDLimit() {}
