package loadgen

import (
	"bufio"
	"errors"
	"io"
	"math"
	"net"
	"time"

	"sihtm/internal/trace"
	"sihtm/internal/wire"
)

// loadConn is one generator connection: an independent sender driving
// its share of the arrival process and a receiver turning echoed ids
// back into latencies.
type loadConn struct {
	g  *gen
	nc net.Conn
	bw *bufio.Writer

	// meanNs is the mean inter-arrival gap of this connection's share
	// of the total rate, in nanoseconds.
	meanNs float64
	// firstNs staggers connection start offsets across one mean gap so
	// the ramp does not begin with a synchronized burst.
	firstNs float64
	rng     rng
}

// newLoadConn splits the run's arrival process across connections.
func newLoadConn(g *gen, nc net.Conn, idx int) *loadConn {
	mean := float64(time.Second) * float64(g.cfg.Conns) / g.cfg.Arrival.Rate
	return &loadConn{
		g:       g,
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 4096),
		meanNs:  mean,
		firstNs: mean * float64(idx) / float64(g.cfg.Conns),
		rng:     rng{state: g.cfg.Seed ^ (uint64(idx)*0x9e3779b97f4a7c15 + 1)},
	}
}

// gap draws one inter-arrival time in nanoseconds.
func (c *loadConn) gap() float64 {
	if c.g.cfg.Arrival.Process == "poisson" {
		return c.meanNs * c.rng.exp()
	}
	return c.meanNs
}

// sendLoop runs the open-loop schedule: draw the next arrival, sleep
// until it, send a request whose id IS the scheduled time. When the
// loop falls behind (server backpressure filled the socket buffer, or
// the host is out of CPU), it sends immediately but keeps the original
// schedule — subsequent arrivals are not pushed back, and the id still
// carries the scheduled time, so queueing delay is charged to latency
// instead of silently omitted.
func (c *loadConn) sendLoop() {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	next := c.firstNs + c.gap() // scheduled offset from epoch, ns
	ops := [1]wire.Op{}
	var buf []byte
	for {
		sched := time.Duration(next)
		if d := sched - time.Since(c.g.epoch); d > 0 {
			if timer == nil {
				timer = time.NewTimer(d)
			} else {
				timer.Reset(d)
			}
			select {
			case <-c.g.stop:
				return
			case <-timer.C:
			}
		} else {
			select {
			case <-c.g.stop:
				return
			default:
			}
			if lag := -d; lag > time.Duration(c.g.maxLag.Load()) {
				c.g.maxLag.Store(int64(lag))
			}
		}
		key := c.rng.next() % uint64(c.g.cfg.Keys)
		if c.rng.float() < c.g.cfg.ReadFrac {
			ops[0] = wire.Op{Kind: wire.OpGet, Key: key}
		} else {
			ops[0] = wire.Op{Kind: wire.OpRMW, Key: key, Arg: 1}
		}
		// Sampled requests carry a trace id in the frame extension; the
		// request id stays the scheduled send time, so CO-safe latency
		// accounting and tracing compose.
		var tr uint64
		if c.g.sampler.Sample() {
			tr = c.g.ids.Next()
		}
		buf = wire.AppendOpsFrameT(buf[:0], uint64(sched), tr, ops[:])
		if _, err := c.bw.Write(buf); err != nil {
			c.g.fail(err)
			return
		}
		if err := c.bw.Flush(); err != nil {
			c.g.fail(err)
			return
		}
		c.g.sent.Add(1)
		next += c.gap()
	}
}

// recvLoop demultiplexes nothing: every reply's id is its request's
// scheduled send time, so latency is now − id directly. The server
// echoes the trace extension, so a traced reply closes its KClient span
// here with no per-request bookkeeping either.
func (c *loadConn) recvLoop() {
	var buf []byte
	for {
		id, t, _, tr, _, nbuf, err := wire.ReadFrameT(c.nc, buf)
		if err != nil {
			if !c.g.stopped.Load() && !errors.Is(err, io.EOF) {
				c.g.fail(err)
			}
			return
		}
		buf = nbuf
		switch t {
		case wire.TReply:
			lat := time.Since(c.g.epoch) - time.Duration(id)
			c.g.hist.Observe(lat)
			c.g.replies.Add(1)
			if tr != 0 && c.g.ring != nil {
				c.g.ring.Add(trace.Span{
					Trace: tr,
					Kind:  trace.KClient,
					Start: c.g.epoch.Add(time.Duration(id)).UnixNano(),
					Dur:   int64(lat),
				})
			}
		case wire.TErr:
			c.g.errs.Add(1)
		}
	}
}

// rng is a splitmix64 stream: deterministic per connection, allocation
// free, and good enough for arrival gaps and key draws.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9f9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// exp returns a unit-mean exponential draw.
func (r *rng) exp() float64 { return -math.Log(1 - r.float()) }
