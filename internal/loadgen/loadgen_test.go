package loadgen_test

import (
	"testing"
	"time"

	"sihtm/internal/htm"
	"sihtm/internal/loadgen"
	"sihtm/internal/memsim"
	"sihtm/internal/server"
	"sihtm/internal/sihtm"
	"sihtm/internal/topology"
	"sihtm/internal/workload/engine"
)

// startServer builds a populated hash-map backend behind a loopback
// wire server for the generator to aim at.
func startServer(t *testing.T, keys, shards int) (*server.Server, string) {
	t.Helper()
	spec := engine.Spec{
		Name: "loadgentest",
		Keys: keys,
		Dist: engine.Dist{Kind: engine.DistUniform},
		Mix:  []engine.MixEntry{{Op: engine.OpRead, Percent: 100}},
		Seed: 7,
	}
	buckets := keys / 4
	if buckets < 1 {
		buckets = 1
	}
	heap := memsim.NewHeapLines(engine.HashmapHeapLines(spec, buckets))
	m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
	backend := engine.NewHashmapBackend(heap, buckets)
	engine.Populate(backend, spec)
	srv, err := server.New(server.Config{
		Backend:  backend,
		System:   sihtm.NewSystem(m, shards, sihtm.Config{}),
		Shards:   shards,
		BatchMax: 16,
		Scenario: "loadgentest",
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Drain()
		if err := <-served; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, addr.String()
}

func TestParseArrival(t *testing.T) {
	a, err := loadgen.ParseArrival("poisson:20000")
	if err != nil || a.Process != "poisson" || a.Rate != 20000 {
		t.Fatalf("poisson:20000 -> %+v, %v", a, err)
	}
	if a.String() != "poisson:20000" {
		t.Fatalf("round trip: %q", a.String())
	}
	if _, err := loadgen.ParseArrival("uniform:2500.5"); err != nil {
		t.Fatalf("uniform:2500.5 rejected: %v", err)
	}
	for _, bad := range []string{"", "poisson", "poisson:", "poisson:-1", "poisson:0", "gauss:100", "poisson:xyz"} {
		if _, err := loadgen.ParseArrival(bad); err == nil {
			t.Fatalf("ParseArrival(%q) accepted", bad)
		}
	}
}

// TestOpenLoopRun drives a live server with a modest open-loop ladder
// and checks the accounting: requests flow, replies match the offered
// mix, latency lands in the window histogram, and the server's
// population is conserved (the RMW/GET mix never inserts).
func TestOpenLoopRun(t *testing.T) {
	keys := 256
	_, addr := startServer(t, keys, 2)

	windows := 0
	res, err := loadgen.Run(loadgen.Config{
		Addr:    addr,
		Conns:   32,
		Arrival: loadgen.Arrival{Process: "poisson", Rate: 4000},
		Keys:    keys,
		Warmup:  50 * time.Millisecond,
		Measure: 200 * time.Millisecond,
		Seed:    1,
		AtWindow: func(start bool) {
			windows++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if windows != 2 {
		t.Fatalf("AtWindow called %d times, want 2", windows)
	}
	if res.Conns != 32 || res.Offered != 4000 {
		t.Fatalf("echoed config wrong: %+v", res)
	}
	if res.Sent == 0 || res.Replies == 0 {
		t.Fatalf("no traffic in window: sent=%d replies=%d", res.Sent, res.Replies)
	}
	if res.Errs != 0 {
		t.Fatalf("%d error replies", res.Errs)
	}
	// Open loop at an easy rate: roughly the offered count should have
	// been sent (4000/s over 200ms ≈ 800; allow wide slack for CI).
	if res.Sent < 200 {
		t.Fatalf("only %d sends in a 200ms window at 4000/s offered", res.Sent)
	}
	if got := res.Hist.Count(); got != res.Replies {
		t.Fatalf("histogram holds %d observations for %d replies", got, res.Replies)
	}
	if p99 := res.Hist.Quantile(0.99); p99 <= 0 {
		t.Fatalf("p99 = %v", p99)
	}
	if res.Throughput <= 0 {
		t.Fatal("zero throughput")
	}

	// The GET/RMW mix over populated keys must conserve population.
	rb, err := engine.DialRemote(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if err := rb.Check(); err != nil {
		t.Fatalf("server invariant check after run: %v", err)
	}
}

// TestOpenLoopUniform exercises the uniform process and a read-only
// mix.
func TestOpenLoopUniform(t *testing.T) {
	keys := 64
	_, addr := startServer(t, keys, 1)
	res, err := loadgen.Run(loadgen.Config{
		Addr:     addr,
		Conns:    4,
		Arrival:  loadgen.Arrival{Process: "uniform", Rate: 2000},
		Keys:     keys,
		ReadFrac: 1.0,
		Warmup:   20 * time.Millisecond,
		Measure:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replies == 0 {
		t.Fatal("no replies")
	}
}

// TestRunRejectsBadConfig covers the config validation.
func TestRunRejectsBadConfig(t *testing.T) {
	bad := []loadgen.Config{
		{Conns: 0, Arrival: loadgen.Arrival{Rate: 1}, Keys: 1},
		{Conns: 1, Arrival: loadgen.Arrival{Rate: 0}, Keys: 1},
		{Conns: 1, Arrival: loadgen.Arrival{Rate: 1}, Keys: 0},
	}
	for i, cfg := range bad {
		if _, err := loadgen.Run(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	// A dead address must fail the dial, not hang.
	_, err := loadgen.Run(loadgen.Config{
		Addr: "127.0.0.1:1", Conns: 2,
		Arrival: loadgen.Arrival{Process: "uniform", Rate: 100}, Keys: 8,
	})
	if err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
}
