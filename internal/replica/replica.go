// Package replica is the WAL-shipping layer of the replicated cluster:
// a leader publishes its committed redo records to followers, each
// follower continuously replays them into its own heap and serves
// read-only transactions from the replayed snapshot, and a follower can
// be promoted into a serving leader after the old leader dies.
//
// The design composes three existing guarantees:
//
//   - The WAL's ordering contract (file order = sequence order =
//     serialization order) means a follower that applies records in
//     sequence order holds, at watermark W, exactly the state produced
//     by commits 1..W — the same prefix-consistency argument as crash
//     recovery, running continuously.
//   - The durable store's "acknowledged ⇒ fsynced" rule bounds what the
//     leader ships: only records at or below the durable frontier go on
//     the wire, so a follower never applies a commit the leader could
//     still lose.
//   - The paper's snapshot read-only transactions are the consistency
//     story for replica reads: a follower's reads run against a
//     stale-but-consistent prefix at a published watermark — exactly an
//     SI-HTM ROT whose snapshot is W commits old.
//
// Failover is shared-log promotion: a promoted follower first catches
// up from the dead leader's log file on disk (Replay's valid prefix —
// everything acknowledged is inside it, the torn tail never was), so
// zero acknowledged commits are lost even when the replication stream
// was cut mid-flight. The stream's job is to keep the follower near the
// frontier so promotion is fast; the log's job is to make it exact.
package replica

import (
	"io"
	"sync/atomic"
	"time"

	"sihtm/internal/wal"
	"sihtm/internal/wire"
)

// streamChunkBytes bounds one TReplBatch payload; large commits still
// ship (a single record is never split), the bound only decides where
// record runs are cut into frames.
const streamChunkBytes = 128 << 10

// heartbeatEvery is the idle bound on the stream: a publisher with
// nothing new to ship emits an empty batch this often so followers can
// tell a quiet leader from a dead one (their read timeout is a small
// multiple of this).
const heartbeatEvery = 50 * time.Millisecond

// pollEvery is the publisher's poll quantum against the durable
// frontier.
const pollEvery = 500 * time.Microsecond

// Publisher is the leader side of WAL shipping: it serves any number of
// subscribers, each tailing the leader's log file from the subscriber's
// own resume point, bounded by the durable frontier.
type Publisher struct {
	logPath string
	log     *wal.Log
	subs    atomic.Int64
	drops   atomic.Uint64

	// traceLookup, when set, maps a record's commit sequence number to
	// the trace id of the request that produced it (zero when unknown or
	// evicted). Streams then ship traced record headers (FlagReplTrace)
	// so followers can close the replication leg of an end-to-end trace.
	traceLookup atomic.Pointer[func(uint64) uint64]
}

// NewPublisher builds a publisher over the leader's log. logPath is the
// same file the log appends to; each subscriber gets its own read-only
// tailer over it.
func NewPublisher(logPath string, log *wal.Log) *Publisher {
	return &Publisher{logPath: logPath, log: log}
}

// Subscribers returns the number of live streams.
func (p *Publisher) Subscribers() int { return int(p.subs.Load()) }

// Dropped returns how many subscriber streams ended on a failed write —
// followers that went away mid-stream rather than unsubscribing by
// closing cleanly before a frame was in flight.
func (p *Publisher) Dropped() uint64 { return p.drops.Load() }

// SetTraceLookup installs the seq→trace mapping future streams consult
// (the server wires its lossy SeqTraces table here). Nil disables traced
// shipping. Safe to call while streams are live; each frame snapshots
// the pointer.
func (p *Publisher) SetTraceLookup(fn func(uint64) uint64) {
	if fn == nil {
		p.traceLookup.Store(nil)
		return
	}
	p.traceLookup.Store(&fn)
}

// Stream serves one subscriber: TReplBatch frames carrying consecutive
// records from fromSeq onward, bounded by the durable frontier, written
// to w until the write fails or stop reports true. Every frame carries
// the frontier as its watermark; idle periods are bridged by heartbeat
// frames so the subscriber's liveness timeout holds.
func (p *Publisher) Stream(w io.Writer, id, fromSeq uint64, stop func() bool) error {
	t, err := wal.OpenTailer(p.logPath, fromSeq)
	if err != nil {
		return err
	}
	defer t.Close()
	p.subs.Add(1)
	defer p.subs.Add(-1)

	var recs []wal.Record
	var payload, frame []byte
	var advertised uint64
	lastSend := time.Now()

	// The traced layout is decided once per stream: a lookup installed
	// mid-stream takes effect on the next subscription, so every frame a
	// follower sees on one connection uses one record-header layout.
	lookup := p.traceLookup.Load()
	recHeader := 12
	if lookup != nil {
		recHeader = 20
	}

	emit := func(b wire.ReplBatch) error {
		if lookup != nil {
			payload = wire.AppendReplBatchT(payload[:0], b)
			frame = wire.AppendFrameT(frame[:0], id, wire.TReplBatch, wire.FlagReplTrace, 0, payload)
		} else {
			payload = wire.AppendReplBatch(payload[:0], b)
			frame = wire.AppendFrame(frame[:0], id, wire.TReplBatch, payload)
		}
		if _, err := w.Write(frame); err != nil {
			p.drops.Add(1)
			return err
		}
		advertised = b.Watermark
		lastSend = time.Now()
		return nil
	}

	for {
		if stop != nil && stop() {
			return nil
		}
		limit := p.log.DurableSeq()
		recs, err = t.Next(limit, recs[:0])
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			if limit > advertised || time.Since(lastSend) >= heartbeatEvery {
				if err := emit(wire.ReplBatch{Watermark: limit}); err != nil {
					return err
				}
				continue
			}
			time.Sleep(pollEvery)
			continue
		}
		// Chunk the run into bounded frames; a record is never split.
		batch := wire.ReplBatch{Watermark: limit}
		size := 0
		for _, r := range recs {
			rec := wire.ReplRecord{Seq: r.Seq, Pairs: make([]wire.ReplPair, len(r.Entries))}
			if lookup != nil {
				rec.Trace = (*lookup)(r.Seq)
			}
			for i, e := range r.Entries {
				rec.Pairs[i] = wire.ReplPair{Addr: uint64(e.Addr), Val: e.Val}
			}
			recBytes := recHeader + len(rec.Pairs)*16
			if len(batch.Records) > 0 && (size+recBytes > streamChunkBytes || len(batch.Records) >= wire.MaxReplRecords) {
				if err := emit(batch); err != nil {
					return err
				}
				batch = wire.ReplBatch{Watermark: limit}
				size = 0
			}
			batch.Records = append(batch.Records, rec)
			size += recBytes
		}
		if err := emit(batch); err != nil {
			return err
		}
	}
}
