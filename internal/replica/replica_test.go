package replica

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sihtm/internal/footprint"
	"sihtm/internal/memsim"
	"sihtm/internal/netchaos"
	"sihtm/internal/rng"
	"sihtm/internal/wal"
	"sihtm/internal/wire"
)

const testHeapWords = 4096

// testLeader is a WAL + publisher serving TReplSub over a real
// listener — the leader's streaming half without the full server.
type testLeader struct {
	log  *wal.Log
	path string
	pub  *Publisher
	ln   net.Listener
	stop chan struct{}
}

func newTestLeader(t *testing.T) *testLeader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "leader.log")
	l, err := wal.Create(path, wal.Config{Window: 0}) // daemon, fsync per batch
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tl := &testLeader{log: l, path: path, pub: NewPublisher(path, l), ln: ln, stop: make(chan struct{})}
	go tl.serve()
	t.Cleanup(func() {
		close(tl.stop)
		ln.Close()
		l.Close()
	})
	return tl
}

func (tl *testLeader) serve() {
	for {
		c, err := tl.ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			_, typ, payload, _, err := wire.ReadFrame(c, nil)
			if err != nil || typ != wire.TReplSub {
				return
			}
			from, err := wire.ParseReplSub(payload)
			if err != nil {
				return
			}
			stopped := func() bool {
				select {
				case <-tl.stop:
					return true
				default:
					return false
				}
			}
			c.SetWriteDeadline(time.Time{})
			tl.pub.Stream(c, 1, from, stopped)
		}(c)
	}
}

// commit appends one deterministic record and returns its seq.
func (tl *testLeader) commit(t *testing.T, model []uint64, r *rng.Rand) uint64 {
	t.Helper()
	n := 1 + r.Intn(6)
	entries := make([]footprint.Entry, n)
	for i := range entries {
		a := r.Intn(testHeapWords)
		v := r.Uint64()
		entries[i] = footprint.Entry{Addr: memsim.Addr(a), Val: v}
		model[a] = v
	}
	return tl.log.Append(entries)
}

func newTestFollower(t *testing.T, tl *testLeader, dial func() (net.Conn, error)) *Follower {
	t.Helper()
	if dial == nil {
		addr := tl.ln.Addr().String()
		dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	f, err := NewFollower(FollowerConfig{
		Heap:        memsim.NewHeap(testHeapWords),
		Dial:        dial,
		ReadTimeout: 250 * time.Millisecond,
		RetryEvery:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func checkHeap(t *testing.T, f *Follower, model []uint64) {
	t.Helper()
	f.RLock()
	defer f.RUnlock()
	for a, v := range model {
		if got := f.heap.Load(memsim.Addr(a)); got != v {
			t.Fatalf("addr %d: heap %d, model %d", a, got, v)
		}
	}
}

// TestStreamAndApply: records appended on the leader arrive, in order,
// on the follower; the watermark tracks the durable frontier.
func TestStreamAndApply(t *testing.T) {
	tl := newTestLeader(t)
	model := make([]uint64, testHeapWords)
	r := rng.New(11)
	f := newTestFollower(t, tl, nil)
	f.Start()

	var last uint64
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			last = tl.commit(t, model, r)
		}
		tl.log.WaitDurable(last)
		if !f.WaitWatermark(last, 5*time.Second) {
			t.Fatalf("round %d: watermark %d never reached %d", round, f.Watermark(), last)
		}
		checkHeap(t, f, model)
	}
	if f.Applied() != last {
		t.Fatalf("applied %d records, want %d", f.Applied(), last)
	}
	if lag := f.LeaderSeq(); lag < last {
		t.Fatalf("leader frontier %d never advertised (last %d)", lag, last)
	}
}

// TestChaosResume: the stream runs through a seeded chaos dialer that
// cuts connections, tears frames and refuses dials in partition
// windows; the follower must reconnect, resume from its watermark and
// converge to the exact leader state — the satellite's survivability
// requirement.
func TestChaosResume(t *testing.T) {
	tl := newTestLeader(t)
	model := make([]uint64, testHeapWords)
	r := rng.New(23)

	chaos := netchaos.NewDialer(tl.ln.Addr().String(), netchaos.Config{
		Seed:        99,
		CutAfterMin: 2, CutAfterMax: 30,
		TearProb:     0.5,
		PartitionMin: 1, PartitionMax: 4,
	})
	f := newTestFollower(t, tl, chaos.Dial)
	f.Start()

	var last uint64
	for i := 0; i < 600; i++ {
		last = tl.commit(t, model, r)
		if i%40 == 0 {
			time.Sleep(2 * time.Millisecond) // let the stream interleave with the cuts
		}
	}
	tl.log.WaitDurable(last)
	if !f.WaitWatermark(last, 20*time.Second) {
		t.Fatalf("watermark %d never reached %d (reconnects %d, cuts %d)",
			f.Watermark(), last, f.Reconnects(), chaos.Cuts())
	}
	checkHeap(t, f, model)
	if chaos.Cuts() == 0 {
		t.Fatal("chaos schedule never cut the stream; the test proved nothing")
	}
	if f.Reconnects() == 0 {
		t.Fatal("follower never reconnected")
	}
}

// TestPromoteCatchUp: kill the stream early, then promote with the
// leader's log on disk — the follower must catch up to the full valid
// prefix (zero acknowledged loss) and report itself promoted.
func TestPromoteCatchUp(t *testing.T) {
	tl := newTestLeader(t)
	model := make([]uint64, testHeapWords)
	r := rng.New(31)

	// A chaos dialer that dies quickly keeps the follower behind.
	chaos := netchaos.NewDialer(tl.ln.Addr().String(), netchaos.Config{
		Seed:        5,
		CutAfterMin: 1, CutAfterMax: 6,
		PartitionMin: 2, PartitionMax: 6,
	})
	f := newTestFollower(t, tl, chaos.Dial)
	f.Start()

	var last uint64
	for i := 0; i < 300; i++ {
		last = tl.commit(t, model, r)
	}
	tl.log.WaitDurable(last)

	wm, err := f.Promote(tl.path)
	if err != nil {
		t.Fatal(err)
	}
	if wm < last {
		t.Fatalf("promoted at watermark %d, leader durable %d", wm, last)
	}
	if !f.Promoted() {
		t.Fatal("follower not marked promoted")
	}
	checkHeap(t, f, model)
}

// TestFollowerOwnLog: a follower with its own WAL ends up with a log
// whose replay reproduces its heap exactly — the digest-exact
// verification hook the failover scenario uses.
func TestFollowerOwnLog(t *testing.T) {
	tl := newTestLeader(t)
	model := make([]uint64, testHeapWords)
	r := rng.New(47)
	ownPath := filepath.Join(t.TempDir(), "follower.log")
	addr := tl.ln.Addr().String()
	f, err := NewFollower(FollowerConfig{
		Heap:        memsim.NewHeap(testHeapWords),
		Dial:        func() (net.Conn, error) { return net.Dial("tcp", addr) },
		OwnLogPath:  ownPath,
		ReadTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Start()

	var last uint64
	for i := 0; i < 200; i++ {
		last = tl.commit(t, model, r)
	}
	tl.log.WaitDurable(last)
	if !f.WaitWatermark(last, 5*time.Second) {
		t.Fatalf("watermark %d never reached %d", f.Watermark(), last)
	}
	if _, err := f.Promote(""); err != nil {
		t.Fatal(err)
	}

	// Replay the follower's own log onto a fresh heap: digest-exact.
	replayed := memsim.NewHeap(testHeapWords)
	st, err := wal.Replay(ownPath, func(seq uint64, entries []footprint.Entry) error {
		for _, e := range entries {
			replayed.Store(e.Addr, e.Val)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSeq != last {
		t.Fatalf("own log replays to seq %d, want %d", st.LastSeq, last)
	}
	for a := 0; a < testHeapWords; a++ {
		if replayed.Load(memsim.Addr(a)) != f.heap.Load(memsim.Addr(a)) {
			t.Fatalf("own-log replay diverges at addr %d", a)
		}
	}
}

// TestCatchUpMutilation is the crashtest-style satellite: the leader's
// log is truncated and bit-flipped at random points, and follower
// catch-up from the damaged file must yield exactly a prefix of the
// commit history — never divergence, never a misapplied record.
func TestCatchUpMutilation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "leader.log")
	l, err := wal.Create(path, wal.Config{NoDaemon: true})
	if err != nil {
		t.Fatal(err)
	}
	const records = 80
	r := rng.New(63)
	// prefixes[k] is the model heap after commits 1..k.
	prefixes := make([][]uint64, records+1)
	prefixes[0] = make([]uint64, testHeapWords)
	for k := 1; k <= records; k++ {
		model := append([]uint64(nil), prefixes[k-1]...)
		n := 1 + r.Intn(5)
		entries := make([]footprint.Entry, n)
		for i := range entries {
			a := r.Intn(testHeapWords)
			v := r.Uint64()
			entries[i] = footprint.Entry{Addr: memsim.Addr(a), Val: v}
			model[a] = v
		}
		l.Append(entries)
		prefixes[k] = model
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	matchesPrefix := func(heap *memsim.Heap, wm uint64) bool {
		if wm > records {
			return false
		}
		for a, v := range prefixes[wm] {
			if heap.Load(memsim.Addr(a)) != v {
				return false
			}
		}
		return true
	}

	for round := 0; round < 120; round++ {
		mut := append([]byte(nil), img...)
		switch r.Intn(3) {
		case 0: // truncate
			mut = mut[:r.Intn(len(mut)+1)]
		case 1: // bit flip
			mut[r.Intn(len(mut))] ^= 1 << uint(r.Intn(8))
		case 2: // zeroed span
			off := r.Intn(len(mut))
			end := off + 1 + r.Intn(48)
			if end > len(mut) {
				end = len(mut)
			}
			for i := off; i < end; i++ {
				mut[i] = 0
			}
		}
		mutPath := filepath.Join(dir, "mut.log")
		if err := os.WriteFile(mutPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := NewFollower(FollowerConfig{
			Heap: memsim.NewHeap(testHeapWords),
			Dial: func() (net.Conn, error) { return nil, os.ErrClosed },
		})
		if err != nil {
			t.Fatal(err)
		}
		f.CatchUp(mutPath) // damage may or may not error; state must stay a prefix
		if !matchesPrefix(f.heap, f.Watermark()) {
			t.Fatalf("round %d: watermark %d is not a clean prefix", round, f.Watermark())
		}
		f.Close()
	}
}
