package replica

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/footprint"
	"sihtm/internal/memsim"
	"sihtm/internal/trace"
	"sihtm/internal/wal"
	"sihtm/internal/wire"
)

// FollowerConfig assembles a Follower.
type FollowerConfig struct {
	// Heap is the follower's heap, already holding the deterministic
	// base image (the same post-population state the leader's log was
	// started from — the contract crash recovery also relies on).
	Heap *memsim.Heap
	// From is the first sequence number to apply (default 1). A
	// follower restarted after recovering its own log to sequence S
	// resumes with From = S+1.
	From uint64
	// Dial opens a connection to the leader. Tests and chaos harnesses
	// inject fault-wrapped dialers here.
	Dial func() (net.Conn, error)
	// OwnLogPath, when set, persists every applied record into the
	// follower's own WAL: the promoted follower then owns a complete
	// log (verification replays it; new followers could tail it).
	OwnLogPath string
	// ReadTimeout bounds one stream read; it doubles as the liveness
	// timeout (the leader heartbeats far more often). Default 1s.
	ReadTimeout time.Duration
	// RetryEvery paces reconnect attempts. Default 5ms.
	RetryEvery time.Duration
}

// Follower replays the leader's stream into its own heap and publishes
// how far it got. Reads served off the heap take RLock so they observe
// a consistent prefix (apply holds the write lock per batch); the
// watermark a read observes is the sequence number its snapshot
// corresponds to.
type Follower struct {
	cfg    FollowerConfig
	heap   *memsim.Heap
	ownLog *wal.Log

	// mu excludes batch application from snapshot readers: apply holds
	// Lock across a whole batch, readers hold RLock across a whole
	// read transaction, so every read sees a record boundary.
	mu sync.RWMutex

	watermark atomic.Uint64 // highest applied sequence (published under mu)
	leaderSeq atomic.Uint64 // durable frontier the leader last advertised
	maxAddr   memsim.Addr   // highest replayed address (guarded by mu)

	promoted   atomic.Bool
	reconnects atomic.Uint64
	applied    atomic.Uint64

	// traceRing, when set, receives one KReplApply span per applied
	// traced record — the replication leg of an end-to-end trace.
	// Records skipped by the idempotent resume overlap emit nothing:
	// a reconnect must never duplicate a span.
	traceRing atomic.Pointer[trace.Ring]

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewFollower validates the configuration and builds the follower (not
// yet streaming).
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Heap == nil || cfg.Dial == nil {
		return nil, fmt.Errorf("replica: FollowerConfig needs Heap and Dial")
	}
	if cfg.From == 0 {
		cfg.From = 1
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = time.Second
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 5 * time.Millisecond
	}
	f := &Follower{
		cfg:  cfg,
		heap: cfg.Heap,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	f.watermark.Store(cfg.From - 1)
	if cfg.OwnLogPath != "" {
		l, err := wal.Create(cfg.OwnLogPath, wal.Config{NoDaemon: true, FirstSeq: cfg.From})
		if err != nil {
			return nil, err
		}
		f.ownLog = l
	}
	return f, nil
}

// Start launches the streaming loop: dial, subscribe from the
// watermark, apply until the connection dies, reconnect. Idempotent.
func (f *Follower) Start() {
	f.startOnce.Do(func() { go f.run() })
}

// Stop ends the streaming loop and waits for it to exit. Idempotent;
// implied by Promote.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.startOnce.Do(func() { close(f.done) }) // never started: unblock the wait
	<-f.done
}

// Close stops the follower and closes its own log, syncing it first.
func (f *Follower) Close() error {
	f.Stop()
	if f.ownLog != nil {
		return f.ownLog.Close()
	}
	return nil
}

// Watermark returns the highest applied sequence number: reads served
// under RLock observe exactly commits 1..Watermark.
func (f *Follower) Watermark() uint64 { return f.watermark.Load() }

// LeaderSeq returns the durable frontier the leader last advertised;
// LeaderSeq - Watermark is the replication lag in commits.
func (f *Follower) LeaderSeq() uint64 { return f.leaderSeq.Load() }

// Reconnects counts stream re-establishments (chaos survivability).
func (f *Follower) Reconnects() uint64 { return f.reconnects.Load() }

// Applied counts applied records.
func (f *Follower) Applied() uint64 { return f.applied.Load() }

// Promoted reports whether the follower has been promoted.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// SetTraceRing attaches a span ring: every subsequently applied stream
// record that carries a trace id records a KReplApply span into it.
// Nil detaches.
func (f *Follower) SetTraceRing(r *trace.Ring) { f.traceRing.Store(r) }

// RLock / RUnlock bracket one snapshot read transaction.
func (f *Follower) RLock()   { f.mu.RLock() }
func (f *Follower) RUnlock() { f.mu.RUnlock() }

// Lock / Unlock quiesce the follower entirely (structural checks).
func (f *Follower) Lock()   { f.mu.Lock() }
func (f *Follower) Unlock() { f.mu.Unlock() }

// WaitWatermark blocks until the watermark reaches seq or the timeout
// expires, reporting which.
func (f *Follower) WaitWatermark(seq uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for f.watermark.Load() < seq {
		if time.Now().After(deadline) {
			return f.watermark.Load() >= seq
		}
		time.Sleep(200 * time.Microsecond)
	}
	return true
}

// Stats summarizes the follower for the control plane.
func (f *Follower) Stats() wire.ReplStats {
	role := "follower"
	if f.promoted.Load() {
		role = "promoted"
	}
	return wire.ReplStats{
		Role:       role,
		Watermark:  f.watermark.Load(),
		LeaderSeq:  f.leaderSeq.Load(),
		Reconnects: f.reconnects.Load(),
	}
}

// Promote turns the follower into a serving leader: stop the stream,
// catch up from the (dead) leader's log file when a path is given —
// Replay's valid prefix contains every acknowledged commit, which is
// the zero-loss argument — and mark the node promoted so its server
// starts admitting writes. Returns the final watermark.
func (f *Follower) Promote(leaderLogPath string) (uint64, error) {
	f.Stop()
	if leaderLogPath != "" {
		if err := f.CatchUp(leaderLogPath); err != nil {
			return f.watermark.Load(), err
		}
	}
	if f.ownLog != nil {
		if err := f.ownLog.Sync(); err != nil {
			return f.watermark.Load(), err
		}
	}
	f.promoted.Store(true)
	return f.watermark.Load(), nil
}

// CatchUp replays the valid prefix of the log at path, applying every
// record past the current watermark. The caller must have stopped the
// stream first (Promote does).
func (f *Follower) CatchUp(path string) error {
	_, err := wal.Replay(path, func(seq uint64, entries []footprint.Entry) error {
		if seq <= f.watermark.Load() {
			return nil
		}
		return f.applyOne(seq, entries)
	})
	return err
}

// run is the streaming loop.
func (f *Follower) run() {
	defer close(f.done)
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		conn, err := f.cfg.Dial()
		if err != nil {
			f.pause()
			continue
		}
		err = f.follow(conn)
		conn.Close()
		select {
		case <-f.stop:
			return
		default:
		}
		_ = err // any stream end short of Stop is a reconnect
		f.reconnects.Add(1)
		f.pause()
	}
}

// pause sleeps one retry quantum, or returns early on stop.
func (f *Follower) pause() {
	select {
	case <-f.stop:
	case <-time.After(f.cfg.RetryEvery):
	}
}

// follow subscribes on one connection and applies its stream until the
// connection breaks or the follower stops. Any read timeout is treated
// as a dead leader (heartbeats bound the idle gap), so a stuck stream
// converges to reconnect-and-resume rather than hanging.
func (f *Follower) follow(conn net.Conn) error {
	sub := wire.AppendFrame(nil, 1, wire.TReplSub, wire.AppendReplSub(nil, f.watermark.Load()+1))
	conn.SetWriteDeadline(time.Now().Add(f.cfg.ReadTimeout))
	if _, err := conn.Write(sub); err != nil {
		return err
	}
	var buf []byte
	for {
		select {
		case <-f.stop:
			return nil
		default:
		}
		conn.SetReadDeadline(time.Now().Add(f.cfg.ReadTimeout))
		var (
			t       wire.Type
			flags   byte
			payload []byte
			err     error
		)
		_, t, flags, _, payload, buf, err = wire.ReadFrameT(conn, buf)
		if err != nil {
			return err
		}
		switch t {
		case wire.TReplBatch:
			b, err := wire.ParseReplBatchFlags(payload, flags)
			if err != nil {
				return err
			}
			if err := f.applyBatch(b); err != nil {
				return err
			}
		case wire.TErr:
			return fmt.Errorf("replica: leader refused: %s", payload)
		default:
			return fmt.Errorf("replica: unexpected stream frame %v", t)
		}
	}
}

// applyBatch applies one stream batch under the write lock. Records at
// or below the watermark are skipped (a resumed stream may overlap);
// a gap is a stream error — the reconnect path resubscribes from the
// watermark and heals it.
func (f *Follower) applyBatch(b wire.ReplBatch) error {
	if b.Watermark > f.leaderSeq.Load() {
		f.leaderSeq.Store(b.Watermark)
	}
	if len(b.Records) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ring := f.traceRing.Load()
	for _, rec := range b.Records {
		wm := f.watermark.Load()
		if rec.Seq <= wm {
			// Idempotent resume overlap: already applied, so the span for
			// this record was already emitted (or never will be) — a
			// reconnect replaying the overlap must not duplicate it.
			continue
		}
		if rec.Seq != wm+1 {
			return fmt.Errorf("replica: stream gap: got seq %d at watermark %d", rec.Seq, wm)
		}
		traced := ring != nil && rec.Trace != 0
		var t0 time.Time
		if traced {
			t0 = time.Now()
		}
		if err := f.applyPairsLocked(rec.Seq, rec.Pairs); err != nil {
			return err
		}
		if traced {
			ring.Add(trace.Span{
				Trace: rec.Trace,
				Kind:  trace.KReplApply,
				Seq:   rec.Seq,
				Start: t0.UnixNano(),
				Dur:   int64(time.Since(t0)),
				Arg:   int64(f.watermark.Load()),
			})
		}
	}
	return nil
}

// applyOne applies one record from a log replay (CatchUp), taking the
// write lock per record.
func (f *Follower) applyOne(seq uint64, entries []footprint.Entry) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	wm := f.watermark.Load()
	if seq != wm+1 {
		return fmt.Errorf("replica: catch-up gap: got seq %d at watermark %d", seq, wm)
	}
	pairs := make([]wire.ReplPair, len(entries))
	for i, e := range entries {
		pairs[i] = wire.ReplPair{Addr: uint64(e.Addr), Val: e.Val}
	}
	return f.applyPairsLocked(seq, pairs)
}

// applyPairsLocked redoes one record into the heap, mirrors it into the
// follower's own log, advances the allocation watermark past replayed
// lines (the same rule recovery applies) and publishes the new
// watermark. Callers hold mu.
func (f *Follower) applyPairsLocked(seq uint64, pairs []wire.ReplPair) error {
	var entries []footprint.Entry
	if f.ownLog != nil {
		entries = make([]footprint.Entry, len(pairs))
	}
	for i, pr := range pairs {
		a := memsim.Addr(pr.Addr)
		if int(a) >= f.heap.Size() {
			return fmt.Errorf("replica: redo address %d beyond heap size %d", a, f.heap.Size())
		}
		f.heap.Store(a, pr.Val)
		if a > f.maxAddr {
			f.maxAddr = a
		}
		if entries != nil {
			entries[i] = footprint.Entry{Addr: a, Val: pr.Val}
		}
	}
	if f.ownLog != nil {
		if got := f.ownLog.Append(entries); got != seq {
			return fmt.Errorf("replica: own log assigned seq %d for record %d", got, seq)
		}
	}
	if len(pairs) > 0 {
		end := (memsim.LineOf(f.maxAddr) + 1).FirstAddr()
		if int(end) > f.heap.Allocated() {
			f.heap.RestoreAllocated(int(end))
		}
	}
	f.applied.Add(1)
	f.watermark.Store(seq)
	return nil
}
