package replica

import (
	"net"
	"os"
	"testing"
	"time"

	"sihtm/internal/memsim"
	"sihtm/internal/netchaos"
	"sihtm/internal/rng"
	"sihtm/internal/trace"
)

import "sihtm/internal/wire"

// traceForSeq is the deterministic seq → trace mapping the trace tests
// hang on the publisher: nonzero for every sequence.
func traceForSeq(seq uint64) uint64 { return seq ^ 0xabcd_0001_0000_0001 }

// TestChaosTracePropagation is the tracing satellite of the chaos
// suite: a fully traced stream (every record carries an id) runs
// through a seeded fault schedule of cuts, torn frames and partition
// windows. After convergence the follower's ring must hold exactly one
// repl_apply span per applied record — reconnect overlap must not
// duplicate a span, a fault must not orphan (lose) one, and every span
// must carry the id the leader's lookup stamped on its sequence.
func TestChaosTracePropagation(t *testing.T) {
	tl := newTestLeader(t)
	tl.pub.SetTraceLookup(traceForSeq)
	model := make([]uint64, testHeapWords)
	r := rng.New(77)

	chaos := netchaos.NewDialer(tl.ln.Addr().String(), netchaos.Config{
		Seed:        17,
		CutAfterMin: 2, CutAfterMax: 30,
		TearProb:     0.5,
		PartitionMin: 1, PartitionMax: 4,
	})
	f := newTestFollower(t, tl, chaos.Dial)
	ring := trace.NewRing(4096)
	f.SetTraceRing(ring)
	f.Start()

	var last uint64
	for i := 0; i < 600; i++ {
		last = tl.commit(t, model, r)
		if i%40 == 0 {
			time.Sleep(2 * time.Millisecond) // let the stream interleave with the cuts
		}
	}
	tl.log.WaitDurable(last)
	if !f.WaitWatermark(last, 20*time.Second) {
		t.Fatalf("watermark %d never reached %d (reconnects %d, cuts %d)",
			f.Watermark(), last, f.Reconnects(), chaos.Cuts())
	}
	checkHeap(t, f, model)
	if chaos.Cuts() == 0 || f.Reconnects() == 0 {
		t.Fatalf("chaos never engaged (cuts %d, reconnects %d); the test proved nothing",
			chaos.Cuts(), f.Reconnects())
	}

	perSeq := map[uint64]int{}
	for _, s := range ring.Snapshot(nil) {
		if s.Kind != trace.KReplApply {
			t.Fatalf("follower ring holds a %s span", s.Kind)
		}
		if s.Seq == 0 || s.Seq > last {
			t.Fatalf("span for sequence %d outside the applied history (last %d)", s.Seq, last)
		}
		if s.Trace != traceForSeq(s.Seq) {
			t.Fatalf("seq %d closed with trace %d, want %d", s.Seq, s.Trace, traceForSeq(s.Seq))
		}
		perSeq[s.Seq]++
	}
	for seq, n := range perSeq {
		if n > 1 {
			t.Fatalf("seq %d closed %d replication spans; reconnect overlap duplicated it", seq, n)
		}
	}
	// The 600-record history fits the ring, so coverage must be exact:
	// one span per applied record, none missing.
	if uint64(len(perSeq)) != last {
		t.Fatalf("spans cover %d of %d applied records", len(perSeq), last)
	}
}

// TestDuplicateBatchSkipsSpans forces the idempotent-resume branch
// directly: redelivering an already-applied batch (exactly what a
// reconnect overlap looks like) must neither reapply records nor emit
// a second round of repl_apply spans, and unsampled records must never
// emit any.
func TestDuplicateBatchSkipsSpans(t *testing.T) {
	f, err := NewFollower(FollowerConfig{
		Heap: memsim.NewHeap(testHeapWords),
		Dial: func() (net.Conn, error) { return nil, os.ErrClosed },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ring := trace.NewRing(64)
	f.SetTraceRing(ring)

	b := wire.ReplBatch{Watermark: 3, Records: []wire.ReplRecord{
		{Seq: 1, Trace: 101, Pairs: []wire.ReplPair{{Addr: 1, Val: 11}}},
		{Seq: 2, Trace: 102, Pairs: []wire.ReplPair{{Addr: 2, Val: 22}}},
		{Seq: 3, Pairs: []wire.ReplPair{{Addr: 3, Val: 33}}}, // unsampled
	}}
	if err := f.applyBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := f.applyBatch(b); err != nil { // reconnect overlap: full redelivery
		t.Fatal(err)
	}
	if f.Watermark() != 3 {
		t.Fatalf("watermark %d after redelivery, want 3", f.Watermark())
	}

	spans := ring.Snapshot(nil)
	if len(spans) != 2 {
		t.Fatalf("ring holds %d spans after redelivery, want 2 (one per traced record): %+v", len(spans), spans)
	}
	want := map[uint64]uint64{1: 101, 2: 102}
	for _, s := range spans {
		if s.Kind != trace.KReplApply {
			t.Fatalf("unexpected %s span", s.Kind)
		}
		tr, ok := want[s.Seq]
		if !ok || s.Trace != tr {
			t.Fatalf("span {seq %d, trace %d} unexpected", s.Seq, s.Trace)
		}
		delete(want, s.Seq)
	}
}
