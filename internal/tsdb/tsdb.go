// Package tsdb is the in-process time-series store over the telemetry
// registry: a scraper that samples every registered series on a fixed
// interval into a bounded ring of snapshots, plus delta/rate/quantile
// window math for the alert engine and the /debug/timeseries JSON
// surface.
//
// The ring is fully preallocated at construction — every slot carries a
// scalar vector and one HistogramSnapshot per histogram series with its
// bucket array already sized — so a steady-state Scrape performs zero
// allocations (pinned by TestScrapeZeroAllocs, race-gated like the wire
// and trace pins). The store deliberately has no query language: the
// alert engine and the dump endpoint are its only consumers, and both
// work from series references resolved once at wiring time.
package tsdb

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/stats"
	"sihtm/internal/telemetry"
)

// Defaults: one snapshot per second, four minutes of retention — small
// enough to hold every smoke run whole, big enough for slow-burn alert
// windows.
const (
	DefaultInterval  = time.Second
	DefaultRetention = 240
)

// Config sizes a Store.
type Config struct {
	// Interval is the self-scrape cadence (default DefaultInterval).
	Interval time.Duration
	// Retention is the ring capacity in snapshots (default
	// DefaultRetention).
	Retention int
}

// Ref locates one series in the store's scrape layout. Resolve with
// Lookup once at wiring time; the zero Ref is not valid.
type Ref struct {
	hist bool
	idx  int
}

// slot is one scrape: a timestamp, every scalar value, and a full
// bucket snapshot of every histogram. All storage is preallocated.
type slot struct {
	at      int64 // unix nanoseconds
	scalars []float64
	hists   []stats.HistogramSnapshot
}

// Store scrapes a telemetry.Registry into a ring of slots.
type Store struct {
	interval    time.Duration
	scalars     []telemetry.SeriesReader
	hists       []telemetry.SeriesReader
	byKey       map[string]Ref
	scrapeDur   *stats.Histogram // the registry's own SelfObserve histogram
	afterScrape func(time.Time)

	mu    sync.RWMutex
	slots []slot
	head  int // next slot to write
	count int // filled slots, <= len(slots)

	overruns  atomic.Uint64
	started   atomic.Bool
	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// seriesKey is the lookup key of one series: name{sig} with the label
// signature in telemetry's canonical sorted form.
func seriesKey(name string, labels []telemetry.Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]telemetry.Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// New builds a store over every series currently registered in reg,
// registering the registry's self-observability instruments first so
// they land in the scrape layout too. Series registered after New are
// rendered by /metrics but not captured in the ring.
func New(reg *telemetry.Registry, cfg Config) *Store {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Retention <= 0 {
		cfg.Retention = DefaultRetention
	}
	s := &Store{
		interval:  cfg.Interval,
		scrapeDur: reg.SelfObserve(),
		byKey:     make(map[string]Ref),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, rd := range reg.Readers() {
		if rd.Hist != nil {
			s.byKey[seriesKey(rd.Info.Name, rd.Info.Labels)] = Ref{hist: true, idx: len(s.hists)}
			s.hists = append(s.hists, rd)
		} else {
			s.byKey[seriesKey(rd.Info.Name, rd.Info.Labels)] = Ref{idx: len(s.scalars)}
			s.scalars = append(s.scalars, rd)
		}
	}
	s.slots = make([]slot, cfg.Retention)
	for i := range s.slots {
		s.slots[i].scalars = make([]float64, len(s.scalars))
		s.slots[i].hists = make([]stats.HistogramSnapshot, len(s.hists))
		for j := range s.slots[i].hists {
			s.slots[i].hists[j].Counts = make([]uint64, stats.NumHistogramBuckets)
		}
	}
	return s
}

// Interval returns the configured scrape cadence.
func (s *Store) Interval() time.Duration { return s.interval }

// Retention returns the ring capacity in snapshots.
func (s *Store) Retention() int { return len(s.slots) }

// Len returns the number of snapshots currently held.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Overruns counts scrapes that took longer than the interval — the
// self-observed bound on scrape overhead.
func (s *Store) Overruns() uint64 { return s.overruns.Load() }

// OnScrape installs a hook invoked after every scrape with the scrape
// timestamp — the alert engine's evaluation entry point. Install before
// Start; not safe to change while the scrape loop runs.
func (s *Store) OnScrape(fn func(time.Time)) { s.afterScrape = fn }

// Lookup resolves a series to a Ref. Labels may be given in any order.
func (s *Store) Lookup(name string, labels ...telemetry.Label) (Ref, bool) {
	ref, ok := s.byKey[seriesKey(name, labels)]
	return ref, ok
}

// Scrape samples every series into the next ring slot at the current
// time. Normally driven by Start's ticker; exposed for manual drivers.
func (s *Store) Scrape() { s.ScrapeAt(time.Now()) }

// ScrapeAt is Scrape with an explicit timestamp — the deterministic
// entry point for tests and offline drivers. Timestamps must be
// monotonically non-decreasing across calls.
func (s *Store) ScrapeAt(at time.Time) {
	start := time.Now()
	s.mu.Lock()
	sl := &s.slots[s.head]
	sl.at = at.UnixNano()
	for i := range s.scalars {
		sl.scalars[i] = s.scalars[i].Value()
	}
	for i := range s.hists {
		s.hists[i].Hist.SnapshotInto(&sl.hists[i])
	}
	s.head = (s.head + 1) % len(s.slots)
	if s.count < len(s.slots) {
		s.count++
	}
	s.mu.Unlock()
	d := time.Since(start)
	s.scrapeDur.Observe(time.Duration(d.Microseconds()))
	if d > s.interval {
		s.overruns.Add(1)
	}
	if s.afterScrape != nil {
		s.afterScrape(at)
	}
}

// Start launches the scrape loop. Idempotent.
func (s *Store) Start() {
	s.startOnce.Do(func() {
		s.started.Store(true)
		go s.run()
	})
}

func (s *Store) run() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Scrape()
		}
	}
}

// Close stops the scrape loop and waits for it to exit. Safe to call
// whether or not Start ran, and more than once.
func (s *Store) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.started.Load() {
		<-s.done
	}
}

// ordered iterates the filled slots oldest-first under the read lock.
func (s *Store) ordered(f func(sl *slot)) {
	first := s.head - s.count
	if first < 0 {
		first += len(s.slots)
	}
	for i := 0; i < s.count; i++ {
		f(&s.slots[(first+i)%len(s.slots)])
	}
}

// window collects pointers to the slots whose timestamps fall within
// the trailing window, measured back from the newest slot (not the wall
// clock, so manually scraped test data behaves identically). window <=
// 0 selects everything. Caller must hold the read lock.
func (s *Store) windowLocked(window time.Duration) []*slot {
	if s.count == 0 {
		return nil
	}
	var sel []*slot
	s.ordered(func(sl *slot) { sel = append(sel, sl) })
	if window <= 0 {
		return sel
	}
	newest := sel[len(sel)-1].at
	cut := newest - int64(window)
	lo := 0
	for lo < len(sel) && sel[lo].at < cut {
		lo++
	}
	return sel[lo:]
}

// LatestScalar returns the most recent sample of a scalar series.
func (s *Store) LatestScalar(ref Ref) (float64, bool) {
	if ref.hist {
		return 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.count == 0 {
		return 0, false
	}
	last := s.head - 1
	if last < 0 {
		last += len(s.slots)
	}
	return s.slots[last].scalars[ref.idx], true
}

// ScalarWindow returns the first and last samples of a scalar series
// within the trailing window plus the wall time between them. ok
// demands at least two samples in the window.
func (s *Store) ScalarWindow(ref Ref, window time.Duration) (first, last float64, dt time.Duration, ok bool) {
	if ref.hist {
		return 0, 0, 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sel := s.windowLocked(window)
	if len(sel) < 2 {
		return 0, 0, 0, false
	}
	a, b := sel[0], sel[len(sel)-1]
	return a.scalars[ref.idx], b.scalars[ref.idx], time.Duration(b.at - a.at), true
}

// Delta returns last-first of a scalar series over the trailing window.
func (s *Store) Delta(ref Ref, window time.Duration) (float64, bool) {
	first, last, _, ok := s.ScalarWindow(ref, window)
	return last - first, ok
}

// Rate returns the per-second increase of a scalar series over the
// trailing window.
func (s *Store) Rate(ref Ref, window time.Duration) (float64, bool) {
	first, last, dt, ok := s.ScalarWindow(ref, window)
	if !ok || dt <= 0 {
		return 0, false
	}
	return (last - first) / dt.Seconds(), true
}

// HistWindow returns the bucket-wise delta of a histogram series over
// the trailing window — the observations that window saw — plus the
// wall time it spans. ok demands at least two snapshots in the window.
func (s *Store) HistWindow(ref Ref, window time.Duration) (stats.HistogramSnapshot, time.Duration, bool) {
	if !ref.hist {
		return stats.HistogramSnapshot{}, 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sel := s.windowLocked(window)
	if len(sel) < 2 {
		return stats.HistogramSnapshot{}, 0, false
	}
	a, b := sel[0], sel[len(sel)-1]
	return b.hists[ref.idx].Sub(a.hists[ref.idx]), time.Duration(b.at - a.at), true
}

// QuantileOver returns the q-quantile of a histogram series over the
// observations in the trailing window. ok is false when the window has
// too few snapshots or saw no observations at all.
func (s *Store) QuantileOver(ref Ref, q float64, window time.Duration) (time.Duration, bool) {
	delta, _, ok := s.HistWindow(ref, window)
	if !ok {
		return 0, false
	}
	return delta.QuantileOK(q)
}
