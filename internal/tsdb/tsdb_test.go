package tsdb

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"sihtm/internal/telemetry"
)

// fixture builds a registry with one of every instrument shape and a
// small store over it. Scrapes are driven manually with synthetic
// timestamps so window math is exact.
func fixture(t *testing.T, retention int) (*telemetry.Registry, *Store, *telemetry.Counter, *telemetry.Gauge, func(d time.Duration)) {
	t.Helper()
	reg := telemetry.NewRegistry()
	c := reg.MustCounter("t_ops_total", "ops", telemetry.L("kind", "w"))
	g := reg.MustGauge("t_depth", "queue depth")
	h := reg.MustHistogram("t_lat_seconds", "latency", telemetry.UnitSeconds)
	var fnv uint64
	reg.MustCounterFunc("t_fn_total", "fn counter", func() uint64 { return fnv })
	reg.MustGaugeFunc("t_fn_gauge", "fn gauge", func() float64 { return 7.5 })
	s := New(reg, Config{Interval: 10 * time.Millisecond, Retention: retention})
	base := time.Unix(1000, 0)
	step := func(d time.Duration) {
		fnv++
		h.Observe(d)
		base = base.Add(s.Interval())
		s.ScrapeAt(base)
	}
	return reg, s, c, g, step
}

func TestWindowMath(t *testing.T) {
	_, s, c, g, step := fixture(t, 32)
	// 10 scrapes, 10ms apart; counter +5 per interval, gauge = i,
	// histogram observes 1ms then 2ms alternating.
	for i := 0; i < 10; i++ {
		c.Add(5)
		g.Set(int64(i))
		d := time.Millisecond
		if i%2 == 1 {
			d = 2 * time.Millisecond
		}
		step(d)
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	cref, ok := s.Lookup("t_ops_total", telemetry.L("kind", "w"))
	if !ok {
		t.Fatal("Lookup t_ops_total failed")
	}
	if v, ok := s.LatestScalar(cref); !ok || v != 50 {
		t.Fatalf("LatestScalar = %v,%v want 50,true", v, ok)
	}
	// Trailing 50ms window spans 6 points (5 intervals): delta = 25.
	if d, ok := s.Delta(cref, 50*time.Millisecond); !ok || d != 25 {
		t.Fatalf("Delta(50ms) = %v,%v want 25,true", d, ok)
	}
	if r, ok := s.Rate(cref, 50*time.Millisecond); !ok || r != 500 {
		t.Fatalf("Rate(50ms) = %v,%v want 500,true", r, ok)
	}
	// Full-ring delta: 9 intervals visible between first and last point.
	if d, ok := s.Delta(cref, 0); !ok || d != 45 {
		t.Fatalf("Delta(all) = %v,%v want 45,true", d, ok)
	}
	gref, _ := s.Lookup("t_depth")
	if v, _ := s.LatestScalar(gref); v != 9 {
		t.Fatalf("gauge latest = %v want 9", v)
	}
	fref, _ := s.Lookup("t_fn_gauge")
	if v, _ := s.LatestScalar(fref); v != 7.5 {
		t.Fatalf("fn gauge latest = %v want 7.5", v)
	}
	href, ok := s.Lookup("t_lat_seconds")
	if !ok {
		t.Fatal("Lookup t_lat_seconds failed")
	}
	delta, dt, ok := s.HistWindow(href, 50*time.Millisecond)
	if !ok || dt != 50*time.Millisecond {
		t.Fatalf("HistWindow dt = %v,%v want 50ms,true", dt, ok)
	}
	if delta.Count() != 5 {
		t.Fatalf("HistWindow count = %d want 5", delta.Count())
	}
	if q, ok := s.QuantileOver(href, 0.99, 50*time.Millisecond); !ok || q < time.Millisecond {
		t.Fatalf("QuantileOver = %v,%v", q, ok)
	}
	// Too few points in a tiny window.
	if _, _, _, ok := s.ScalarWindow(cref, time.Millisecond); ok {
		t.Fatal("ScalarWindow with one point should not be ok")
	}
	// Unknown series.
	if _, ok := s.Lookup("t_missing"); ok {
		t.Fatal("Lookup of unregistered series succeeded")
	}
}

func TestRingWrap(t *testing.T) {
	_, s, c, _, step := fixture(t, 4)
	for i := 0; i < 10; i++ {
		c.Add(1)
		step(time.Millisecond)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want retention 4", s.Len())
	}
	cref, _ := s.Lookup("t_ops_total", telemetry.L("kind", "w"))
	// Ring holds scrapes 7..10: counter values 7,8,9,10.
	if d, ok := s.Delta(cref, 0); !ok || d != 3 {
		t.Fatalf("Delta over wrapped ring = %v,%v want 3,true", d, ok)
	}
}

func TestSelfObserveInRing(t *testing.T) {
	_, s, _, _, step := fixture(t, 8)
	step(time.Millisecond)
	step(time.Millisecond)
	if _, ok := s.Lookup(telemetry.ScrapeDurationName); !ok {
		t.Fatal("scrape-duration histogram not in scrape layout")
	}
	ref, ok := s.Lookup(telemetry.SeriesTotalName)
	if !ok {
		t.Fatal("series-count gauge not in scrape layout")
	}
	if v, _ := s.LatestScalar(ref); v < 5 {
		t.Fatalf("series total = %v, want >= 5", v)
	}
}

func TestDumpAndHandler(t *testing.T) {
	_, s, c, g, step := fixture(t, 16)
	for i := 0; i < 6; i++ {
		c.Add(10)
		g.Set(int64(i * 2))
		step(3 * time.Millisecond)
	}
	d := s.Dump(0, "")
	if len(d.TimesNs) != 6 {
		t.Fatalf("dump points = %d want 6", len(d.TimesNs))
	}
	cs := d.Find("t_ops_total")
	if len(cs) != 1 || cs[0].Labels["kind"] != "w" {
		t.Fatalf("Find t_ops_total = %+v", cs)
	}
	if got := cs[0].Last(); got != 60 {
		t.Fatalf("counter last = %v want 60", got)
	}
	if delta, ok := d.ScalarDelta(cs[0], 0); !ok || delta != 50 {
		t.Fatalf("dump delta = %v,%v want 50,true", delta, ok)
	}
	if rate, ok := d.ScalarRate(cs[0], 0); !ok || rate != 1000 {
		t.Fatalf("dump rate = %v,%v want 1000,true", rate, ok)
	}
	hs := d.Find("t_lat_seconds")
	if len(hs) != 1 || hs[0].Kind != "histogram" {
		t.Fatalf("Find t_lat_seconds = %+v", hs)
	}
	if hs[0].Counts[5] != 6 {
		t.Fatalf("cumulative count = %d want 6", hs[0].Counts[5])
	}
	if hs[0].LastP99Us(6) <= 0 {
		t.Fatal("LastP99Us = 0, want a positive interval p99")
	}
	// Prefix filter drops the t_* series.
	if got := s.Dump(0, "sihtm_"); len(got.Series) >= len(d.Series) {
		t.Fatalf("prefix filter kept %d of %d series", len(got.Series), len(d.Series))
	}

	// HTTP round-trip: the handler's JSON parses back into the same shape.
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "?window=35ms&prefix=t_ops")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rt Dump
	if err := json.NewDecoder(resp.Body).Decode(&rt); err != nil {
		t.Fatal(err)
	}
	if len(rt.TimesNs) != 4 {
		t.Fatalf("windowed points = %d want 4 (35ms window at 10ms spacing)", len(rt.TimesNs))
	}
	if len(rt.Series) != 1 || rt.Series[0].Name != "t_ops_total" {
		t.Fatalf("prefixed series = %+v", rt.Series)
	}
	// Bad window is a 400.
	resp2, err := srv.Client().Get(srv.URL + "?window=nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Fatalf("bad window status = %d want 400", resp2.StatusCode)
	}
}

// TestScrapeZeroAllocs pins the tentpole property: after warm-up, a
// scrape of a realistic registry performs zero allocations. The name
// matches CI's alloc-pin filter (-run 'Alloc|ReuseBuffers').
func TestScrapeZeroAllocs(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.MustCounter("t_ops_total", "ops")
	g := reg.MustGauge("t_depth", "depth")
	h := reg.MustHistogram("t_lat_seconds", "latency", telemetry.UnitSeconds)
	var fnv uint64
	reg.MustCounterFunc("t_fn_total", "fn", func() uint64 { return fnv })
	reg.MustGaugeFunc("t_fn_gauge", "fn", func() float64 { return 1 })
	s := New(reg, Config{Interval: time.Second, Retention: 64})
	op := func() {
		c.Inc()
		g.Set(3)
		fnv++
		h.Observe(time.Millisecond)
		s.Scrape()
	}
	for i := 0; i < 512; i++ {
		op()
	}
	allocs := testing.AllocsPerRun(500, op)
	if raceEnabled {
		t.Skipf("race detector instrumentation allocates (measured %.1f allocs/op); numeric pin gated off", allocs)
	}
	if allocs != 0 {
		t.Fatalf("steady-state scrape allocates %.1f times per op, want 0", allocs)
	}
}
