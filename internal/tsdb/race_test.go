//go:build race

package tsdb

// raceEnabled gates exact-zero allocation assertions; see norace_test.go.
const raceEnabled = true
