// The /debug/timeseries surface: a JSON dump of the ring, one value per
// scrape point per series, with per-point interval quantiles for
// histograms. The same types are what `repro monitor` and `repro
// report` parse back, so the wire shape is the package's public
// contract, not an implementation detail.
package tsdb

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"sihtm/internal/telemetry"
)

// DumpSeries is one series' trajectory across the dumped points.
// Scalars carry Values; histograms carry cumulative observation Counts
// plus interval-delta p50/p99 in microseconds (the delta between
// adjacent dumped points — 0 when the interval saw no observations).
type DumpSeries struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Values []float64         `json:"v,omitempty"`
	Counts []uint64          `json:"count,omitempty"`
	P50Us  []float64         `json:"p50_us,omitempty"`
	P99Us  []float64         `json:"p99_us,omitempty"`
}

// Dump is the full /debug/timeseries payload.
type Dump struct {
	IntervalMs     float64      `json:"interval_ms"`
	Retention      int          `json:"retention"`
	ScrapeOverruns uint64       `json:"scrape_overruns"`
	TimesNs        []int64      `json:"t_unix_ns"`
	Series         []DumpSeries `json:"series"`
}

// Dump renders the trailing window (0 = everything held) of every
// series whose name has the given prefix ("" = all).
func (s *Store) Dump(window time.Duration, prefix string) Dump {
	d := Dump{
		IntervalMs:     float64(s.interval) / float64(time.Millisecond),
		Retention:      len(s.slots),
		ScrapeOverruns: s.Overruns(),
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sel := s.windowLocked(window)
	if len(sel) == 0 {
		return d
	}
	d.TimesNs = make([]int64, len(sel))
	for i, sl := range sel {
		d.TimesNs[i] = sl.at
	}
	for i, rd := range s.scalars {
		if !strings.HasPrefix(rd.Info.Name, prefix) {
			continue
		}
		ds := DumpSeries{
			Name:   rd.Info.Name,
			Labels: labelMap(rd.Info.Labels),
			Kind:   rd.Info.Kind.String(),
			Values: make([]float64, len(sel)),
		}
		for j, sl := range sel {
			ds.Values[j] = sl.scalars[i]
		}
		d.Series = append(d.Series, ds)
	}
	for i, rd := range s.hists {
		if !strings.HasPrefix(rd.Info.Name, prefix) {
			continue
		}
		ds := DumpSeries{
			Name:   rd.Info.Name,
			Labels: labelMap(rd.Info.Labels),
			Kind:   rd.Info.Kind.String(),
			Counts: make([]uint64, len(sel)),
			P50Us:  make([]float64, len(sel)),
			P99Us:  make([]float64, len(sel)),
		}
		for j, sl := range sel {
			snap := sl.hists[i]
			ds.Counts[j] = snap.Count()
			if j > 0 {
				snap = snap.Sub(sel[j-1].hists[i])
			}
			if q, ok := snap.QuantileOK(0.5); ok {
				ds.P50Us[j] = float64(q) / float64(time.Microsecond)
			}
			if q, ok := snap.QuantileOK(0.99); ok {
				ds.P99Us[j] = float64(q) / float64(time.Microsecond)
			}
		}
		d.Series = append(d.Series, ds)
	}
	return d
}

// labelMap converts a sorted label slice to the dump's map form.
func labelMap(labels []telemetry.Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Find returns every dumped series with the given name.
func (d *Dump) Find(name string) []DumpSeries {
	var out []DumpSeries
	for _, s := range d.Series {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// windowStart returns the index of the first dumped point within the
// trailing window (0 = everything).
func (d *Dump) windowStart(window time.Duration) int {
	if len(d.TimesNs) == 0 || window <= 0 {
		return 0
	}
	cut := d.TimesNs[len(d.TimesNs)-1] - int64(window)
	lo := 0
	for lo < len(d.TimesNs) && d.TimesNs[lo] < cut {
		lo++
	}
	return lo
}

// ScalarDelta returns last-first of a scalar series over the trailing
// window of the dump.
func (d *Dump) ScalarDelta(ds DumpSeries, window time.Duration) (float64, bool) {
	lo := d.windowStart(window)
	if len(ds.Values) != len(d.TimesNs) || len(ds.Values)-lo < 2 {
		return 0, false
	}
	return ds.Values[len(ds.Values)-1] - ds.Values[lo], true
}

// ScalarRate returns the per-second increase of a scalar series over
// the trailing window of the dump.
func (d *Dump) ScalarRate(ds DumpSeries, window time.Duration) (float64, bool) {
	lo := d.windowStart(window)
	delta, ok := d.ScalarDelta(ds, window)
	if !ok {
		return 0, false
	}
	dt := time.Duration(d.TimesNs[len(d.TimesNs)-1] - d.TimesNs[lo])
	if dt <= 0 {
		return 0, false
	}
	return delta / dt.Seconds(), true
}

// Last returns the most recent value of a scalar series (0 if empty).
func (ds DumpSeries) Last() float64 {
	if len(ds.Values) == 0 {
		return 0
	}
	return ds.Values[len(ds.Values)-1]
}

// LastP99Us returns the most recent non-zero interval p99 (µs) of a
// histogram series, looking back at most n points — "the latest latency
// the server actually saw", skipping idle intervals.
func (ds DumpSeries) LastP99Us(n int) float64 {
	for i := len(ds.P99Us) - 1; i >= 0 && i >= len(ds.P99Us)-n; i-- {
		if ds.P99Us[i] > 0 {
			return ds.P99Us[i]
		}
	}
	return 0
}

// Handler serves the store as JSON. Query params: ?window=DUR trims to
// the trailing window (Go duration syntax), ?prefix=NAME filters series
// by name prefix.
func Handler(s *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var window time.Duration
		if v := r.URL.Query().Get("window"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad window: "+err.Error(), http.StatusBadRequest)
				return
			}
			window = d
		}
		prefix := r.URL.Query().Get("prefix")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.Encode(s.Dump(window, prefix))
	})
}
