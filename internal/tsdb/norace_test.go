//go:build !race

package tsdb

// raceEnabled gates exact-zero allocation assertions (race-detector
// instrumentation allocates).
const raceEnabled = false
