// Package sihtm implements SI-HTM, the paper's contribution: a restricted,
// single-version implementation of Snapshot Isolation built from the
// POWER8 HTM's rollback-only transactions (ROTs) plus a software-regulated
// quiescence ("safety wait") before the hardware commit.
//
// Update transactions execute as ROTs — capacity-bounded only by their
// write set — and, once complete, publish a "completed" state and wait
// until every transaction that was active when they completed has
// finished (Algorithm 1). Read-only transactions run entirely outside the
// hardware, uninstrumented, announcing themselves through the same state
// array so writers quiesce on them (Algorithm 2). A single-global-lock
// fall-back path guarantees progress; as the paper's footnote 2 notes,
// early lock subscription is impossible here, so the lock is checked at
// begin time and the lock holder explicitly drains active transactions.
//
// The package also implements the paper's §6 future-work sketches as
// opt-in policies: a killing policy (a completed transaction kills
// laggards that prolong its quiescence) and a batching interface (running
// several transactions inside one ROT + one quiescence).
package sihtm

import (
	"runtime"
	"sync/atomic"

	"sihtm/internal/clock"
	"sihtm/internal/htm"
	"sihtm/internal/sgl"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
)

// DefaultRetries is the ROT attempt budget before the SGL fall-back.
const DefaultRetries = 10

// Config tunes SI-HTM.
type Config struct {
	// Retries is the ROT attempt budget per transaction before the SGL
	// fall-back. 0 means DefaultRetries.
	Retries int
	// DisableROFastPath forces read-only transactions through the update
	// path (ROT + safety wait). Used by the quiescence-cost ablation.
	DisableROFastPath bool
	// KillerSpins, when > 0, enables the §6 killing policy: a completed
	// transaction that has spun this many times waiting for one laggard
	// kills the laggard's transaction (read-only fast-path transactions
	// cannot be killed and are always waited out).
	KillerSpins int
}

// stateSlot is one thread's entry in Algorithm 1's shared state array,
// padded to its own cache line. v holds inactive (0), completed (1), or
// the begin timestamp; cur exposes the thread's live ROT to the killing
// policy.
type stateSlot struct {
	v   atomic.Uint64
	cur atomic.Pointer[htm.Tx]
	_   [112]byte
}

// System is the SI-HTM concurrency control.
type System struct {
	m       *htm.Machine
	clk     *clock.Clock
	threads int
	cfg     Config
	state   []stateSlot
	lock    *sgl.Lock
	col     *stats.Collector
	snaps   [][]uint64 // per-thread scratch for the state snapshot

	// hook, when set, makes the SGL fall-back publish through a
	// tm.Recorder so its write set reaches the durability seam; ROT
	// commits reach the hook through the machine (htm.CommitHook).
	hook tm.CommitHook
	recs []tm.Recorder // one per thread, fall-back only
}

// NewSystem builds SI-HTM for the first `threads` hardware threads of m.
func NewSystem(m *htm.Machine, threads int, cfg Config) *System {
	if cfg.Retries == 0 {
		cfg.Retries = DefaultRetries
	}
	s := &System{
		m:       m,
		clk:     clock.New(),
		threads: threads,
		cfg:     cfg,
		state:   make([]stateSlot, threads),
		lock:    sgl.New(m),
		col:     stats.New(threads),
		snaps:   make([][]uint64, threads),
	}
	for i := range s.snaps {
		s.snaps[i] = make([]uint64, threads)
	}
	return s
}

// Name implements tm.System.
func (s *System) Name() string { return "si-htm" }

// Threads implements tm.System.
func (s *System) Threads() int { return s.threads }

// Collector implements tm.System.
func (s *System) Collector() *stats.Collector { return s.col }

// SetCommitHook implements tm.HookableSystem for the fall-back path.
// Call before any transaction runs.
func (s *System) SetCommitHook(h tm.CommitHook) {
	s.hook = h
	s.recs = make([]tm.Recorder, s.threads)
}

// syncWithGL is Algorithm 2's SyncWithGL: announce activity, then retract
// and wait if the global lock is held, retrying until the announcement
// sticks while the lock is free.
func (s *System) syncWithGL(thread int, th *htm.Thread) {
	for {
		s.state[thread].v.Store(s.clk.Now())
		if !s.lock.IsLocked(th) {
			return
		}
		s.state[thread].v.Store(clock.Inactive)
		s.lock.WaitUnlocked(th)
	}
}

// Atomic implements tm.System.
func (s *System) Atomic(thread int, kind tm.Kind, body func(tm.Ops)) {
	th := s.m.Thread(thread)
	l := s.col.Thread(thread)

	if kind == tm.KindReadOnly && !s.cfg.DisableROFastPath {
		// Algorithm 2's read-only fast path: uninstrumented, outside the
		// hardware, unbounded capacity, never aborts. The state
		// announcement is what makes writers quiesce on us.
		s.syncWithGL(thread, th)
		body(tm.ReadOnlyPlainOps{Th: th})
		// The atomic store below plays the role of the lwsync: all reads
		// above complete before the state change is visible.
		s.state[thread].v.Store(clock.Inactive)
		l.Commit(true)
		return
	}

	// Capacity aborts carry the POWER TEXASR persistence hint: a write
	// set that overflowed the TMCAM will overflow again, so after one
	// grace retry the transaction heads straight for the fall-back.
	capacityAborts := 0
	for attempt := 0; attempt < s.cfg.Retries && capacityAborts < 2; attempt++ {
		s.syncWithGL(thread, th)
		ab := s.updateOnce(thread, th, l, body)
		if ab == nil {
			l.Commit(kind == tm.KindReadOnly)
			return
		}
		if ab.Code == htm.CodeCapacity {
			capacityAborts++
		}
		s.state[thread].v.Store(clock.Inactive)
		l.Abort(tm.AbortKindOf(ab.Code))
		runtime.Gosched()
	}

	// Fall-back: acquire the global lock, drain every active transaction,
	// then run serially and non-transactionally. With a commit hook
	// installed the body runs against a Recorder, so the write set is
	// captured and published through the durability seam (the drain above
	// guarantees no hardware commit is still publishing, so the record's
	// sequence number agrees with the serialization order).
	s.lock.Acquire(th)
	s.drainOthers(thread)
	if s.hook != nil {
		rec := &s.recs[thread]
		rec.Begin(tm.PlainOps{Th: th})
		body(rec)
		rec.Flush(thread, s.hook)
	} else {
		body(tm.PlainOps{Th: th})
	}
	s.lock.Release(th)
	l.Commit(kind == tm.KindReadOnly)
	l.Fallback()
}

// updateOnce runs one ROT attempt: body, then Algorithm 1's TxEnd
// (suspend, publish completed, resume, snapshot, safety wait, commit).
// The caller has already announced the begin timestamp.
func (s *System) updateOnce(thread int, th *htm.Thread, l stats.Thread, body func(tm.Ops)) (abort *htm.Abort) {
	l.HWBegin(true)
	tx := th.Begin(htm.ModeROT)
	slot := &s.state[thread]
	slot.cur.Store(tx)
	defer slot.cur.Store(nil)
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(*htm.Abort); ok {
				abort = a
				return
			}
			panic(r)
		}
	}()

	body(tm.TxOps{Tx: tx})

	// TxEnd, Algorithm 1: the state update must be non-transactional —
	// inside the ROT it would consume capacity and, worse, every peer
	// snapshotting our state would kill us.
	tx.Suspend()
	slot.v.Store(clock.Completed)
	tx.Resume() // delivers any conflict that landed while suspended

	snap := s.snaps[thread]
	for c := range s.state {
		snap[c] = s.state[c].v.Load()
	}
	// Safety wait: every thread that was running a transaction when we
	// completed must finish before we make our writes visible.
	for c := range s.state {
		if c == thread || snap[c] <= clock.Completed {
			continue
		}
		spins := uint64(0)
		for s.state[c].v.Load() == snap[c] {
			tx.Poll() // a doomed waiter must stop waiting
			spins++
			if s.cfg.KillerSpins > 0 && spins == uint64(s.cfg.KillerSpins) {
				if victim := s.state[c].cur.Load(); victim != nil {
					victim.Kill()
				}
			}
			runtime.Gosched()
		}
		l.WaitSpins(spins)
	}

	tx.Commit()
	slot.v.Store(clock.Inactive)
	return nil
}

// drainOthers waits until no other thread has an announced transaction.
// Called with the global lock held: newcomers observe the lock and stand
// down, so the wait terminates.
func (s *System) drainOthers(thread int) {
	for c := range s.state {
		if c == thread {
			continue
		}
		for s.state[c].v.Load() != clock.Inactive {
			runtime.Gosched()
		}
	}
}

var _ tm.System = (*System)(nil)
