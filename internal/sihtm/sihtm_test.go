package sihtm_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/sihtm"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

func newSystem(t testing.TB, threads int, cfg sihtm.Config) (*sihtm.System, *memsim.Heap) {
	t.Helper()
	heap := memsim.NewHeapLines(1 << 10)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(4, 2), TMCAMLines: 16})
	return sihtm.NewSystem(m, threads, cfg), heap
}

func TestNameAndThreads(t *testing.T) {
	sys, _ := newSystem(t, 3, sihtm.Config{})
	if sys.Name() != "si-htm" {
		t.Fatalf("Name = %q", sys.Name())
	}
	if sys.Threads() != 3 {
		t.Fatalf("Threads = %d", sys.Threads())
	}
}

// Read-only transactions must never consume TMCAM capacity: a read-only
// scan far beyond the TMCAM commits on the fast path with zero aborts.
func TestReadOnlyUnlimitedCapacity(t *testing.T) {
	sys, heap := newSystem(t, 1, sihtm.Config{})
	lines := make([]memsim.Addr, 200) // 200 lines >> 16-line TMCAM
	for i := range lines {
		lines[i] = heap.AllocLine()
		heap.Store(lines[i], uint64(i))
	}
	var sum uint64
	sys.Atomic(0, tm.KindReadOnly, func(ops tm.Ops) {
		sum = 0
		for _, a := range lines {
			sum += ops.Read(a)
		}
	})
	if sum != 199*200/2 {
		t.Fatalf("sum = %d", sum)
	}
	s := sys.Collector().Snapshot()
	if s.TotalAborts() != 0 || s.CommitsRO != 1 || s.Fallbacks != 0 {
		t.Fatalf("stats = %v", s)
	}
}

// Update transactions are bounded only by their write set: huge read
// footprints with small write sets commit without capacity aborts — the
// paper's central capacity-stretching claim.
func TestUpdateCapacityBoundedByWriteSetOnly(t *testing.T) {
	sys, heap := newSystem(t, 1, sihtm.Config{})
	lines := make([]memsim.Addr, 200)
	for i := range lines {
		lines[i] = heap.AllocLine()
	}
	out := heap.AllocLine()
	sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
		var sum uint64
		for _, a := range lines {
			sum += ops.Read(a)
		}
		ops.Write(out, sum+1)
	})
	s := sys.Collector().Snapshot()
	if s.Aborts[stats.AbortCapacity] != 0 {
		t.Fatalf("capacity aborts = %d, want 0", s.Aborts[stats.AbortCapacity])
	}
	if heap.Load(out) != 1 {
		t.Fatal("commit lost")
	}
}

// ...while a write set beyond the TMCAM must fall back to the SGL.
func TestLargeWriteSetFallsBack(t *testing.T) {
	sys, heap := newSystem(t, 1, sihtm.Config{Retries: 3})
	lines := make([]memsim.Addr, 32) // 32 > 16-line TMCAM
	for i := range lines {
		lines[i] = heap.AllocLine()
	}
	sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
		for i, a := range lines {
			ops.Write(a, uint64(i)+1)
		}
	})
	s := sys.Collector().Snapshot()
	if s.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", s.Fallbacks)
	}
	if s.Aborts[stats.AbortCapacity] != 2 {
		t.Fatalf("capacity aborts = %d, want 2 (persistent-capacity budget)", s.Aborts[stats.AbortCapacity])
	}
	for i, a := range lines {
		if heap.Load(a) != uint64(i)+1 {
			t.Fatal("SGL path lost writes")
		}
	}
}

// DisableROFastPath (ablation A3) pushes read-only transactions through
// the ROT + safety-wait path.
func TestDisableROFastPath(t *testing.T) {
	sys, heap := newSystem(t, 1, sihtm.Config{DisableROFastPath: true})
	x := heap.AllocLine()
	sys.Atomic(0, tm.KindReadOnly, func(ops tm.Ops) { _ = ops.Read(x) })
	s := sys.Collector().Snapshot()
	if s.Commits != 1 || s.CommitsRO != 1 {
		t.Fatalf("stats = %v", s)
	}
	// With the fast path disabled a huge read-only scan still works (ROT
	// reads are untracked), so this ablation only adds quiescence cost.
	lines := make([]memsim.Addr, 100)
	for i := range lines {
		lines[i] = heap.AllocLine()
	}
	sys.Atomic(0, tm.KindReadOnly, func(ops tm.Ops) {
		for _, a := range lines {
			_ = ops.Read(a)
		}
	})
	if got := sys.Collector().Snapshot().Aborts[stats.AbortCapacity]; got != 0 {
		t.Fatalf("capacity aborts = %d, want 0", got)
	}
}

// The §6 killing policy: a writer stuck in its safety wait behind a
// laggard kills the laggard and commits. Without the policy this
// interleaving deadlocks (the laggard only finishes after the writer
// returns), so the test completing at all proves the kill works.
func TestKillerPolicyUnblocksWaiter(t *testing.T) {
	sys, heap := newSystem(t, 2, sihtm.Config{KillerSpins: 200})
	x := heap.AllocLine()
	z := heap.AllocLine()

	var released atomic.Bool
	var laggardStarted atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // the laggard: reads in a loop until released
		defer wg.Done()
		sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
			laggardStarted.Store(true)
			for !released.Load() {
				_ = ops.Read(z) // abort delivery point for the kill
			}
			ops.Write(z, 1)
		})
	}()
	go func() { // the writer that must not wait forever
		defer wg.Done()
		for !laggardStarted.Load() {
			time.Sleep(time.Millisecond)
		}
		sys.Atomic(1, tm.KindUpdate, func(ops tm.Ops) {
			ops.Write(x, 42)
		})
		released.Store(true) // only now may the laggard finish
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("killer policy did not unblock the waiting writer")
	}
	if heap.Load(x) != 42 || heap.Load(z) != 1 {
		t.Fatal("lost writes")
	}
	s := sys.Collector().Snapshot()
	if s.TotalAborts() == 0 {
		t.Fatal("expected at least one kill-induced abort")
	}
}

// The §6 batching interface: the batch pays one quiescence and commits
// atomically — a concurrent snapshot never sees one body's write without
// the other's.
func TestAtomicBatchIsAtomic(t *testing.T) {
	sys, heap := newSystem(t, 2, sihtm.Config{})
	x := heap.AllocLine()
	y := heap.AllocLine()

	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			sys.AtomicBatch(0, []func(tm.Ops){
				func(ops tm.Ops) { ops.Write(x, ops.Read(x)+1) },
				func(ops tm.Ops) { ops.Write(y, ops.Read(y)+1) },
			})
		}
	}()
	tornSeen := false
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			var a, b uint64
			sys.Atomic(1, tm.KindReadOnly, func(ops tm.Ops) {
				a = ops.Read(x)
				b = ops.Read(y)
			})
			if a != b {
				tornSeen = true
				return
			}
		}
	}()
	wg.Wait()
	if tornSeen {
		t.Fatal("batch commit observed torn")
	}
	if heap.Load(x) != rounds || heap.Load(y) != rounds {
		t.Fatalf("batch lost updates: x=%d y=%d, want %d", heap.Load(x), heap.Load(y), rounds)
	}
	s := sys.Collector().Snapshot()
	if s.Commits < 2*rounds {
		t.Fatalf("batch commits = %d, want >= %d (one per body)", s.Commits, 2*rounds)
	}
}

func TestAtomicBatchEmpty(t *testing.T) {
	sys, _ := newSystem(t, 1, sihtm.Config{})
	sys.AtomicBatch(0, nil) // must be a no-op
	if got := sys.Collector().Snapshot().Commits; got != 0 {
		t.Fatalf("commits = %d, want 0", got)
	}
}

// Concurrent mixed workload smoke test: updates + read-only scans with
// full stats accounting.
func TestMixedWorkloadAccounting(t *testing.T) {
	sys, heap := newSystem(t, 4, sihtm.Config{})
	x := heap.AllocLine()
	const perThread = 400
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				if i%4 == 0 {
					sys.Atomic(id, tm.KindReadOnly, func(ops tm.Ops) { _ = ops.Read(x) })
				} else {
					sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
						ops.Write(x, ops.Read(x)+1)
					})
				}
			}
		}(id)
	}
	wg.Wait()
	s := sys.Collector().Snapshot()
	if s.Commits != 4*perThread {
		t.Fatalf("commits = %d, want %d", s.Commits, 4*perThread)
	}
	if s.CommitsRO != 4*perThread/4 {
		t.Fatalf("RO commits = %d, want %d", s.CommitsRO, perThread)
	}
	if got := heap.Load(x); got != uint64(4*perThread*3/4) {
		t.Fatalf("counter = %d, want %d", got, 4*perThread*3/4)
	}
}
