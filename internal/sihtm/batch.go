package sihtm

import (
	"runtime"

	"sihtm/internal/clock"
	"sihtm/internal/tm"
)

// AtomicBatch implements the paper's §6 "batching alternative": instead of
// idling through one safety wait per transaction, a thread runs several
// transaction bodies inside a single ROT and pays a single quiescence and
// a single hardware commit for the whole group. The group commits
// atomically; if any body's execution aborts, the whole group retries, and
// after the retry budget the group runs serially under the global lock.
//
// Read-only bodies in the batch execute through the ROT as well (their
// reads are untracked and free); an all-read-only batch still skips the
// safety wait only if the fast path is taken per body via Atomic, so
// callers should batch update-heavy streams.
func (s *System) AtomicBatch(thread int, bodies []func(tm.Ops)) {
	if len(bodies) == 0 {
		return
	}
	th := s.m.Thread(thread)
	l := s.col.Thread(thread)

	for attempt := 0; attempt < s.cfg.Retries; attempt++ {
		s.syncWithGL(thread, th)
		ab := s.updateOnce(thread, th, l, func(ops tm.Ops) {
			for _, body := range bodies {
				body(ops)
			}
		})
		if ab == nil {
			for range bodies {
				l.Commit(false)
			}
			return
		}
		s.state[thread].v.Store(clock.Inactive)
		l.Abort(tm.AbortKindOf(ab.Code))
		runtime.Gosched()
	}

	s.lock.Acquire(th)
	s.drainOthers(thread)
	for _, body := range bodies {
		body(tm.PlainOps{Th: th})
		l.Commit(false)
	}
	s.lock.Release(th)
	l.Fallback()
}
