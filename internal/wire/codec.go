package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"sihtm/internal/stats"
)

// OpKind enumerates the primitive operations of the data plane. They
// mirror the workload engine's vocabulary; OpRMW exists so a
// read-modify-write executes entirely server-side, inside the same
// transaction as the rest of the batch, instead of requiring a
// round-trip between the read and the dependent write.
type OpKind uint8

// The op vocabulary.
const (
	// OpGet reads Key; result (found, value).
	OpGet OpKind = iota
	// OpPut upserts Key ← Arg; result (wasNew, Arg).
	OpPut
	// OpDel removes Key; result (wasPresent, 0).
	OpDel
	// OpScan visits Arg entries from Key onward; result (true, seen).
	OpScan
	// OpRMW reads Key and upserts Key ← read+Arg (read = 0 when absent);
	// result (true, new value).
	OpRMW

	numOpKinds
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDel:
		return "del"
	case OpScan:
		return "scan"
	case OpRMW:
		return "rmw"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// ReadOnly reports whether the op performs no shared writes — a batch
// of read-only ops executes as one tm.KindReadOnly transaction and
// rides SI-HTM's uninstrumented fast path even over the network.
func (k OpKind) ReadOnly() bool { return k == OpGet || k == OpScan }

// MayInsert reports whether the op can consume a fresh node (the
// executor's Session.Prepare sizing).
func (k OpKind) MayInsert() bool { return k == OpPut || k == OpRMW }

// Op is one data-plane operation. Arg is the value for OpPut, the delta
// for OpRMW, the entry count for OpScan, and unused otherwise.
type Op struct {
	Kind OpKind
	Key  uint64
	Arg  uint64
}

// Result is one op's outcome. OK is "found" for OpGet, "was new" for
// OpPut, "was present" for OpDel and always true for OpScan/OpRMW; Val
// carries the read value, the written value, or the scan count.
type Result struct {
	OK  bool
	Val uint64
}

// opBytes is the encoded size of one op: kind u8 + key u64 + arg u64.
const opBytes = 17

// resultBytes is the encoded size of one result: ok u8 + val u64.
const resultBytes = 9

// AppendOps encodes an op list (count u32, then ops) onto p.
func AppendOps(p []byte, ops []Op) []byte {
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(ops)))
	p = append(p, cnt[:]...)
	for _, op := range ops {
		var b [opBytes]byte
		b[0] = byte(op.Kind)
		binary.LittleEndian.PutUint64(b[1:], op.Key)
		binary.LittleEndian.PutUint64(b[9:], op.Arg)
		p = append(p, b[:]...)
	}
	return p
}

// ParseOps decodes an op list into dst (reused when capacity allows),
// validating kinds, the op-count bound and scan lengths.
func ParseOps(p []byte, dst []Op) ([]Op, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: truncated op list", ErrBadFrame)
	}
	n := binary.LittleEndian.Uint32(p)
	if n > MaxTxnOps {
		return nil, fmt.Errorf("%w: %d ops exceeds %d", ErrBadFrame, n, MaxTxnOps)
	}
	if len(p) != 4+int(n)*opBytes {
		return nil, fmt.Errorf("%w: op list length %d for %d ops", ErrBadFrame, len(p), n)
	}
	dst = dst[:0]
	for i := 0; i < int(n); i++ {
		b := p[4+i*opBytes:]
		op := Op{
			Kind: OpKind(b[0]),
			Key:  binary.LittleEndian.Uint64(b[1:]),
			Arg:  binary.LittleEndian.Uint64(b[9:]),
		}
		if op.Kind >= numOpKinds {
			return nil, fmt.Errorf("%w: unknown op kind %d", ErrBadFrame, b[0])
		}
		if op.Kind == OpScan && op.Arg > MaxScanLen {
			return nil, fmt.Errorf("%w: scan length %d exceeds %d", ErrBadFrame, op.Arg, MaxScanLen)
		}
		dst = append(dst, op)
	}
	return dst, nil
}

// AppendOpsFrame encodes a complete TTxn frame carrying ops directly
// onto buf — equivalent to AppendFrame(buf, id, TTxn, AppendOps(nil,
// ops)) without the intermediate payload slice. Allocation-free when
// buf has capacity; this is the client hot path's encoder.
func AppendOpsFrame(buf []byte, id uint64, ops []Op) []byte {
	return AppendOpsFrameT(buf, id, 0, ops)
}

// AppendOpsFrameT is AppendOpsFrame with a trace id: nonzero trace sets
// FlagTrace and rides the frame's trace extension, zero produces the
// legacy encoding byte-for-byte. Allocation-free when buf has capacity.
func AppendOpsFrameT(buf []byte, id, trace uint64, ops []Op) []byte {
	var flags uint8
	if trace != 0 {
		flags = FlagTrace
	}
	start := len(buf)
	buf = appendHeader(buf, id, TTxn, flags, 0)
	buf = AppendOps(buf, ops)
	return sealFrameT(buf, start, flags, trace)
}

// AppendResults encodes a result list (count u32, then results) onto p.
func AppendResults(p []byte, rs []Result) []byte {
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(rs)))
	p = append(p, cnt[:]...)
	for _, r := range rs {
		var b [resultBytes]byte
		if r.OK {
			b[0] = 1
		}
		binary.LittleEndian.PutUint64(b[1:], r.Val)
		p = append(p, b[:]...)
	}
	return p
}

// AppendResultsFrame encodes a complete TReply frame carrying rs
// directly onto buf — the server hot path's encoder, pairing with
// AppendOpsFrame. Allocation-free when buf has capacity.
func AppendResultsFrame(buf []byte, id uint64, rs []Result) []byte {
	return AppendResultsFrameT(buf, id, 0, rs)
}

// AppendResultsFrameT is AppendResultsFrame with a trace id echoed back
// to the client (zero trace = legacy encoding). The echo lets an
// open-loop receiver attribute the client-side span without holding
// per-request state. Allocation-free when buf has capacity.
func AppendResultsFrameT(buf []byte, id, trace uint64, rs []Result) []byte {
	var flags uint8
	if trace != 0 {
		flags = FlagTrace
	}
	start := len(buf)
	buf = appendHeader(buf, id, TReply, flags, 0)
	buf = AppendResults(buf, rs)
	return sealFrameT(buf, start, flags, trace)
}

// ParseResults decodes a result list into dst.
func ParseResults(p []byte, dst []Result) ([]Result, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: truncated result list", ErrBadFrame)
	}
	n := binary.LittleEndian.Uint32(p)
	if n > MaxTxnOps {
		return nil, fmt.Errorf("%w: %d results exceeds %d", ErrBadFrame, n, MaxTxnOps)
	}
	if len(p) != 4+int(n)*resultBytes {
		return nil, fmt.Errorf("%w: result list length %d for %d results", ErrBadFrame, len(p), n)
	}
	dst = dst[:0]
	for i := 0; i < int(n); i++ {
		b := p[4+i*resultBytes:]
		dst = append(dst, Result{OK: b[0] != 0, Val: binary.LittleEndian.Uint64(b[1:])})
	}
	return dst, nil
}

// Single-op payload codecs: the point-request types carry compact fixed
// layouts instead of an op list.

// AppendKey encodes a TGet/TDel payload.
func AppendKey(p []byte, key uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], key)
	return append(p, b[:]...)
}

// ParseKey decodes a TGet/TDel payload.
func ParseKey(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: key payload of %d bytes", ErrBadFrame, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// AppendKeyArg encodes a TPut/TScan payload (key + value/count).
func AppendKeyArg(p []byte, key, arg uint64) []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:], key)
	binary.LittleEndian.PutUint64(b[8:], arg)
	return append(p, b[:]...)
}

// ParseKeyArg decodes a TPut/TScan payload.
func ParseKeyArg(p []byte) (key, arg uint64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("%w: key+arg payload of %d bytes", ErrBadFrame, len(p))
	}
	return binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint64(p[8:]), nil
}

// Ctrl is the TCtrl payload: live server reconfiguration. Zero fields
// mean "leave unchanged".
type Ctrl struct {
	// BatchMax sets the admission stage's per-transaction op bound — the
	// capacity knob the batch-window sweep turns.
	BatchMax int `json:"batch_max,omitempty"`
	// AdmitWaitUs sets the admission grace period in microseconds: how
	// long an executor holding a non-full batch waits for more pipelined
	// requests before committing. Positive sets, negative clears to
	// zero, zero keeps the current value.
	AdmitWaitUs int `json:"admit_wait_us,omitempty"`
	// P99TargetUs sets the adaptive admission controller's server-side
	// p99 service-latency target in microseconds, starting the
	// controller if it is not running. Negative stops the controller
	// (the knobs freeze at their converged values), zero keeps the
	// current state. While the controller runs, it owns BatchMax and
	// AdmitWaitUs: manual settings in the same Ctrl apply first and are
	// then adjusted from.
	P99TargetUs int `json:"p99_target_us,omitempty"`
}

// ServerStats is the TStats reply payload: everything a load generator
// needs to label and difference a measurement window.
type ServerStats struct {
	// System is the concurrency control the server runs ("si-htm", ...).
	System string `json:"system"`
	// Scenario and Scale describe the hosted workload build, so a remote
	// load generator can reconstruct the matching Spec.
	Scenario string `json:"scenario,omitempty"`
	Scale    string `json:"scale,omitempty"`
	// Shards is the executor count; BatchMax and AdmitWaitUs the current
	// admission bound and grace period.
	Shards      int `json:"shards"`
	BatchMax    int `json:"batch_max"`
	AdmitWaitUs int `json:"admit_wait_us,omitempty"`
	// P99TargetUs is the adaptive admission controller's p99 target
	// (zero when the controller is off); CtrlEpochs counts completed
	// control intervals and CtrlAdjusts the ones that changed a knob.
	// Differencing CtrlAdjusts across a window tells a load generator
	// whether the controller has converged or is still hunting.
	P99TargetUs int    `json:"p99_target_us,omitempty"`
	CtrlEpochs  uint64 `json:"ctrl_epochs,omitempty"`
	CtrlAdjusts uint64 `json:"ctrl_adjusts,omitempty"`
	// Durable reports whether a WAL/checkpoint store backs the server.
	Durable bool `json:"durable,omitempty"`
	// Repl describes the server's place in a replicated cluster (nil on
	// a standalone node).
	Repl *ReplStats `json:"repl,omitempty"`

	// Stats is the server-side collector snapshot: commits count
	// batches (one transaction per batch), aborts follow the paper's
	// taxonomy. Clients difference two snapshots for a window.
	Stats stats.Stats `json:"stats"`
	// Batches and BatchedOps count executed batches and the ops they
	// carried; their ratio is the achieved batch size.
	Batches    uint64 `json:"batches"`
	BatchedOps uint64 `json:"batched_ops"`
	// Hist is the per-op service-latency histogram (admission to reply
	// encode).
	Hist stats.HistogramSnapshot `json:"hist"`
	// Telemetry carries the deep-telemetry counters PR 8 added (nil from
	// servers predating it). Clients difference two snapshots the same
	// way they difference Stats and Hist.
	Telemetry *TelemetryStats `json:"telemetry,omitempty"`
}

// TelemetryStats is the deep-telemetry slice of a TStats reply: the
// same counters the /metrics endpoint scrapes, shipped through the wire
// control plane so load generators and registry cells can fold them
// into BENCH records without an HTTP round trip.
type TelemetryStats struct {
	// FramesIn and FramesOut count wire frames across all connections.
	FramesIn  uint64 `json:"frames_in"`
	FramesOut uint64 `json:"frames_out"`
	// SlowTraces counts requests that exceeded the slow-trace threshold.
	SlowTraces uint64 `json:"slow_traces,omitempty"`
	// AdmitWaitHist is the admission-wait stage histogram (arrival to
	// batch execution start); FlushHist the reply-flush stage (reply
	// encoded to socket write); BatchOpsHist the per-batch op-count
	// distribution (dimensionless buckets).
	AdmitWaitHist stats.HistogramSnapshot `json:"admit_wait_hist"`
	FlushHist     stats.HistogramSnapshot `json:"flush_hist"`
	BatchOpsHist  stats.HistogramSnapshot `json:"batch_ops_hist"`
	// WAL counters and histograms (zero/empty on non-durable servers).
	WalRecords   uint64                  `json:"wal_records,omitempty"`
	WalBytes     uint64                  `json:"wal_bytes,omitempty"`
	WalBatches   uint64                  `json:"wal_batches,omitempty"`
	WalFsyncs    uint64                  `json:"wal_fsyncs,omitempty"`
	FsyncHist    stats.HistogramSnapshot `json:"fsync_hist,omitzero"`
	AckWaitHist  stats.HistogramSnapshot `json:"ack_wait_hist,omitzero"`
	BatchRecHist stats.HistogramSnapshot `json:"batch_rec_hist,omitzero"`
	// Subscribers/Dropped describe the leader's replication streams.
	Subscribers int    `json:"subscribers,omitempty"`
	Dropped     uint64 `json:"dropped_subscribers,omitempty"`
}

// EncodeJSON marshals a control-plane payload (Ctrl, ServerStats).
func EncodeJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Both payload types marshal unconditionally.
		panic(fmt.Sprintf("wire: control payload: %v", err))
	}
	return b
}

// DecodeJSON unmarshals a control-plane payload.
func DecodeJSON(p []byte, v any) error {
	if err := json.Unmarshal(p, v); err != nil {
		return fmt.Errorf("%w: control payload: %v", ErrBadFrame, err)
	}
	return nil
}
