package wire

import (
	"bytes"
	"testing"

	"sihtm/internal/rng"
)

// buildReplBatch frames a deterministic batch for round-trip tests.
func buildReplBatch(r *rng.Rand, firstSeq uint64, records int) ReplBatch {
	b := ReplBatch{Watermark: firstSeq + uint64(records) - 1}
	for i := 0; i < records; i++ {
		rec := ReplRecord{Seq: firstSeq + uint64(i)}
		for j := 0; j < r.Intn(8); j++ {
			rec.Pairs = append(rec.Pairs, ReplPair{Addr: r.Uint64() % 4096, Val: r.Uint64()})
		}
		b.Records = append(b.Records, rec)
	}
	return b
}

func TestReplSubRoundTrip(t *testing.T) {
	from, err := ParseReplSub(AppendReplSub(nil, 1234))
	if err != nil || from != 1234 {
		t.Fatalf("repl sub round trip: (%d, %v)", from, err)
	}
	if _, err := ParseReplSub([]byte{1, 2, 3}); err == nil {
		t.Error("short repl sub payload accepted")
	}
}

func TestReplBatchRoundTrip(t *testing.T) {
	r := rng.New(77)
	for _, records := range []int{0, 1, 5, 40} {
		b := buildReplBatch(r, 10, records)
		p := AppendReplBatch(nil, b)
		if len(p) != b.EncodedSize() {
			t.Fatalf("%d records: encoded %d bytes, EncodedSize says %d", records, len(p), b.EncodedSize())
		}
		got, err := ParseReplBatch(p)
		if err != nil {
			t.Fatalf("%d records: %v", records, err)
		}
		if got.Watermark != b.Watermark || len(got.Records) != len(b.Records) {
			t.Fatalf("%d records: parsed %+v", records, got)
		}
		for i, rec := range b.Records {
			g := got.Records[i]
			if g.Seq != rec.Seq || len(g.Pairs) != len(rec.Pairs) {
				t.Fatalf("record %d: %+v != %+v", i, g, rec)
			}
			for j := range rec.Pairs {
				if g.Pairs[j] != rec.Pairs[j] {
					t.Fatalf("record %d pair %d: %+v != %+v", i, j, g.Pairs[j], rec.Pairs[j])
				}
			}
		}
	}
}

func TestReplBatchValidation(t *testing.T) {
	r := rng.New(9)
	p := AppendReplBatch(nil, buildReplBatch(r, 1, 6))

	// Truncation anywhere must be rejected (strict, no-trailing parse).
	for cut := 0; cut < len(p); cut++ {
		if _, err := ParseReplBatch(p[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// So must trailing garbage.
	if _, err := ParseReplBatch(append(append([]byte{}, p...), 0xAA)); err == nil {
		t.Error("trailing byte accepted")
	}
	// And an absurd record count.
	bad := append([]byte{}, p...)
	bad[8] = 0xFF
	bad[9] = 0xFF
	bad[10] = 0xFF
	bad[11] = 0xFF
	if _, err := ParseReplBatch(bad); err == nil {
		t.Error("absurd record count accepted")
	}
}

// FuzzParseReplFrame mirrors FuzzParseFrame for the replication stream:
// the batch parser must never panic, and any payload it accepts must
// re-encode byte-identically (the encoding is canonical). When the
// input happens to frame as a whole TReplBatch wire frame, the payload
// must survive the same round trip.
func FuzzParseReplFrame(f *testing.F) {
	r := rng.New(3)
	b := buildReplBatch(r, 1, 3)
	f.Add(AppendReplBatch(nil, b))
	f.Add(AppendReplBatch(nil, ReplBatch{Watermark: 9}))
	f.Add(AppendFrame(nil, 1, TReplBatch, AppendReplBatch(nil, b)))
	f.Add(AppendReplSub(nil, 42))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if b, err := ParseReplBatch(data); err == nil {
			if re := AppendReplBatch(nil, b); !bytes.Equal(re, data) {
				t.Fatalf("accepted repl batch does not re-encode identically")
			}
		}
		id, typ, payload, _, err := ParseFrame(data)
		if err != nil || typ != TReplBatch {
			return
		}
		b, err := ParseReplBatch(payload)
		if err != nil {
			return
		}
		re := AppendFrame(nil, id, typ, AppendReplBatch(nil, b))
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("accepted repl frame does not re-encode identically")
		}
	})
}
