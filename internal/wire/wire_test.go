package wire

import (
	"bytes"
	"io"
	"testing"

	"sihtm/internal/rng"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello, shard")
	buf := AppendFrame(nil, 42, TTxn, payload)
	if len(buf) != FrameOverhead+len(payload) {
		t.Fatalf("framed size %d, want %d", len(buf), FrameOverhead+len(payload))
	}
	id, typ, p, size, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || typ != TTxn || !bytes.Equal(p, payload) || size != len(buf) {
		t.Fatalf("ParseFrame = (%d, %v, %q, %d)", id, typ, p, size)
	}

	// Streaming read agrees.
	id, typ, p, _, err = ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || typ != TTxn || !bytes.Equal(p, payload) {
		t.Fatalf("ReadFrame = (%d, %v, %q)", id, typ, p)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	buf := AppendFrame(nil, 7, TStats, nil)
	id, typ, p, _, err := ParseFrame(buf)
	if err != nil || id != 7 || typ != TStats || len(p) != 0 {
		t.Fatalf("empty payload: (%d, %v, %q, %v)", id, typ, p, err)
	}
}

func TestOpsRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpGet, Key: 1},
		{Kind: OpPut, Key: 2, Arg: 20},
		{Kind: OpDel, Key: 3},
		{Kind: OpScan, Key: 4, Arg: 16},
		{Kind: OpRMW, Key: 5, Arg: 1},
	}
	p := AppendOps(nil, ops)
	got, err := ParseOps(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("round trip lost ops: %d vs %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
	// Validation: bad kind, oversized scan, mangled length.
	bad := AppendOps(nil, []Op{{Kind: numOpKinds, Key: 1}})
	if _, err := ParseOps(bad, nil); err == nil {
		t.Error("unknown op kind accepted")
	}
	bad = AppendOps(nil, []Op{{Kind: OpScan, Key: 1, Arg: MaxScanLen + 1}})
	if _, err := ParseOps(bad, nil); err == nil {
		t.Error("oversized scan accepted")
	}
	if _, err := ParseOps(p[:len(p)-1], nil); err == nil {
		t.Error("truncated op list accepted")
	}
}

func TestResultsRoundTrip(t *testing.T) {
	rs := []Result{{OK: true, Val: 9}, {OK: false}, {OK: true, Val: 1 << 60}}
	p := AppendResults(nil, rs)
	got, err := ParseResults(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if got[i] != rs[i] {
			t.Fatalf("result %d: %+v != %+v", i, got[i], rs[i])
		}
	}
	if _, err := ParseResults(p[:len(p)-2], nil); err == nil {
		t.Error("truncated result list accepted")
	}
}

func TestSinglePayloadRoundTrip(t *testing.T) {
	k, err := ParseKey(AppendKey(nil, 77))
	if err != nil || k != 77 {
		t.Fatalf("key round trip: (%d, %v)", k, err)
	}
	key, arg, err := ParseKeyArg(AppendKeyArg(nil, 5, 50))
	if err != nil || key != 5 || arg != 50 {
		t.Fatalf("key+arg round trip: (%d, %d, %v)", key, arg, err)
	}
	if _, err := ParseKey([]byte{1, 2}); err == nil {
		t.Error("short key payload accepted")
	}
	if _, _, err := ParseKeyArg([]byte{1}); err == nil {
		t.Error("short key+arg payload accepted")
	}
}

func TestControlPayloadRoundTrip(t *testing.T) {
	st := ServerStats{System: "si-htm", Shards: 4, BatchMax: 32, Batches: 10, BatchedOps: 55}
	var got ServerStats
	if err := DecodeJSON(EncodeJSON(st), &got); err != nil {
		t.Fatal(err)
	}
	if got.System != "si-htm" || got.BatchedOps != 55 {
		t.Fatalf("stats round trip: %+v", got)
	}
	var c Ctrl
	if err := DecodeJSON([]byte(`{"batch_max":64}`), &c); err != nil || c.BatchMax != 64 {
		t.Fatalf("ctrl decode: (%+v, %v)", c, err)
	}
	if err := DecodeJSON([]byte(`{"batch`), &c); err == nil {
		t.Error("mangled JSON accepted")
	}
}

// buildStream frames a deterministic pipelined request stream and
// returns the image plus each frame's end offset — the wire analogue of
// crashtest's logged history.
func buildStream(r *rng.Rand, frames int) (img []byte, bounds []int) {
	bounds = append(bounds, 0)
	for i := 0; i < frames; i++ {
		var payload []byte
		var typ Type
		switch r.Intn(4) {
		case 0:
			typ = TGet
			payload = AppendKey(nil, r.Uint64())
		case 1:
			typ = TPut
			payload = AppendKeyArg(nil, r.Uint64(), r.Uint64())
		case 2:
			typ = TTxn
			ops := make([]Op, 1+r.Intn(8))
			for j := range ops {
				ops[j] = Op{Kind: OpKind(r.Intn(int(numOpKinds))), Key: r.Uint64(), Arg: uint64(r.Intn(16))}
			}
			payload = AppendOps(nil, ops)
		case 3:
			typ = TStats
		}
		img = AppendFrame(img, uint64(i+1), typ, payload)
		bounds = append(bounds, len(img))
	}
	return img, bounds
}

// drainStream reads frames until the stream ends or breaks, returning
// how many whole frames were accepted and the terminal error.
func drainStream(img []byte) (frames int, err error) {
	r := bytes.NewReader(img)
	var scratch []byte
	for {
		var e error
		_, _, _, scratch, e = ReadFrame(r, scratch)
		if e != nil {
			if e == io.EOF {
				return frames, nil
			}
			return frames, e
		}
		frames++
	}
}

// TestTornStream mirrors wal/crashtest for the wire codec: a valid
// pipelined stream is truncated at every byte offset and randomly
// corrupted (bit flips, zeroed spans, garbage tails), and the reader
// must accept exactly the whole frames that precede the damage — never
// a corrupt frame, never a panic, never a misparse that resynchronizes
// past garbage.
func TestTornStream(t *testing.T) {
	r := rng.New(1234)
	img, bounds := buildStream(r, 40)

	wholeFrames := func(n int) int {
		k := 0
		for k < len(bounds)-1 && bounds[k+1] <= n {
			k++
		}
		return k
	}

	// Truncation at every offset: all whole frames parse; a torn tail
	// ends the stream with an error unless the cut is on a boundary.
	for cut := 0; cut <= len(img); cut++ {
		got, err := drainStream(img[:cut])
		want := wholeFrames(cut)
		if got != want {
			t.Fatalf("cut %d: drained %d frames, want %d", cut, got, want)
		}
		onBoundary := bounds[want] == cut
		if onBoundary && err != nil {
			t.Fatalf("cut %d on frame boundary: unexpected error %v", cut, err)
		}
		if !onBoundary && err == nil {
			t.Fatalf("cut %d mid-frame: torn tail not detected", cut)
		}
	}

	// Random mutilation: bit flips, zeroed spans, garbage splices. The
	// reader must stop at or before the first damaged frame, and never
	// accept more frames than the image originally held.
	for round := 0; round < 400; round++ {
		mut := append([]byte(nil), img...)
		off := r.Intn(len(mut))
		switch r.Intn(3) {
		case 0: // single bit flip
			mut[off] ^= 1 << uint(r.Intn(8))
		case 1: // zeroed span
			end := off + 1 + r.Intn(64)
			if end > len(mut) {
				end = len(mut)
			}
			for i := off; i < end; i++ {
				mut[i] = 0
			}
		case 2: // garbage tail
			mut = mut[:off]
			for i := 0; i < 16; i++ {
				mut = append(mut, byte(r.Intn(256)))
			}
		}
		got, err := drainStream(mut)
		intact := wholeFrames(off) // frames entirely before the damage
		if got > len(bounds)-1 {
			t.Fatalf("round %d: drained %d frames from a %d-frame image", round, got, len(bounds)-1)
		}
		if got < intact {
			t.Fatalf("round %d: damage at %d lost intact frames: drained %d, want >= %d", round, off, got, intact)
		}
		// A mutation that struck inside the stream and was survivable
		// must have been either harmless (CRC collision is ~impossible)
		// or terminal.
		if got > intact && err == nil && got < len(bounds)-1 {
			t.Fatalf("round %d: reader resynchronized past damage at %d (drained %d)", round, off, got)
		}
	}
}

// FuzzParseFrame asserts the parser never panics and never accepts a
// frame whose re-encoding differs — CRC integrity as an invariant.
func FuzzParseFrame(f *testing.F) {
	f.Add(AppendFrame(nil, 1, TGet, AppendKey(nil, 9)))
	f.Add(AppendFrame(nil, 2, TTxn, AppendOps(nil, []Op{{Kind: OpRMW, Key: 3, Arg: 1}})))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, b []byte) {
		id, typ, payload, size, err := ParseFrame(b)
		if err != nil {
			return
		}
		if size > len(b) {
			t.Fatalf("size %d beyond input %d", size, len(b))
		}
		re := AppendFrame(nil, id, typ, payload)
		if !bytes.Equal(re, b[:size]) {
			t.Fatalf("accepted frame does not re-encode identically")
		}
	})
}
