// Package wire is the binary protocol of the networked service layer:
// length-prefixed, CRC-framed messages (in the mould of the WAL's
// record framing) carrying the key-value vocabulary of the workload
// engine — GET/PUT/DEL/SCAN point requests, TXN multi-op transactions —
// plus the control plane (batch-knob updates, server statistics, the
// quiescent invariant check).
//
// Frame layout (all fields little-endian):
//
//	offset  size  field
//	0       4     magic  = frameMagic ("SIHW")
//	4       4     length — payload bytes n (extensions excluded)
//	8       8     id     — request id, echoed on the response; clients
//	              pipeline many frames per connection and demultiplex
//	              responses by id
//	16      1     type   — message Type
//	17      1     flags  — frame extensions (zero on legacy frames)
//	18      2     reserved (zero)
//	20      n     payload (type-specific)
//	20+n    8     trace  — trace id, present only when FlagTrace is set
//	...     4     crc    — CRC-32C (Castagnoli) over everything before it
//
// The flags byte was reserved (and written as zero) before the tracing
// extension, so every unflagged frame is byte-identical to the legacy
// encoding. A flagged frame carries its extensions *after* the payload
// and *before* the CRC, excluded from the length field; receivers that
// understand flags skip them structurally, receivers that don't reject
// the frame at the CRC check — extension bits are therefore only set
// toward peers that advertised them (here: within one repo version).
// Unknown flag bits are a framing error.
//
// The framing is self-validating: a receiver accepts a frame only when
// magic, length bound and CRC all check out, so a torn or corrupted
// stream is detected at the first damaged frame instead of being
// misparsed — mirroring the WAL's torn-tail rule. Framing errors are
// fatal to the connection (there is no resynchronization).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	frameMagic = uint32(0x53494857) // "SIHW"
	// headerBytes is magic + length + id + type + reserved.
	headerBytes  = 20
	trailerBytes = 4
	// FrameOverhead is the framed size of an empty payload.
	FrameOverhead = headerBytes + trailerBytes

	// MaxPayload bounds a frame's payload; larger lengths are treated as
	// corruption. Generous for the control plane's JSON and for the
	// largest admissible TXN.
	MaxPayload = 1 << 20
	// MaxTxnOps bounds the operations of a single TXN request.
	MaxTxnOps = 1 << 12
	// MaxScanLen bounds one SCAN's entry count.
	MaxScanLen = 1 << 12
)

// Frame flag bits (header byte 17).
const (
	// FlagTrace marks a frame carrying an 8-byte trace id between the
	// payload and the CRC. The id propagates a request's identity across
	// process boundaries: loadgen → server on TTxn, echoed back on
	// TReply, leader → follower on TReplBatch frames.
	FlagTrace uint8 = 0x01
	// FlagReplTrace marks a TReplBatch payload whose record headers carry
	// a per-record trace id (the id of the last client request contained
	// in that commit) — see AppendReplBatchT.
	FlagReplTrace uint8 = 0x02

	// flagsKnown is every bit this version understands; anything else is
	// corruption or a future version this receiver cannot frame.
	flagsKnown = FlagTrace | FlagReplTrace

	// traceExtBytes is the size of the FlagTrace extension.
	traceExtBytes = 8
)

// castagnoli is the CRC-32C table shared with the WAL framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Type tags a message. Requests and responses share the frame format;
// response types have the high bit set.
type Type uint8

// The message vocabulary.
const (
	// TGet is a point lookup; payload: key u64.
	TGet Type = 0x01
	// TPut is an upsert; payload: key u64, value u64.
	TPut Type = 0x02
	// TDel is a removal; payload: key u64.
	TDel Type = 0x03
	// TScan visits entries from key onward; payload: key u64, n u64.
	TScan Type = 0x04
	// TTxn is a multi-op transaction, executed atomically; payload: an
	// op list (AppendOps).
	TTxn Type = 0x05
	// TCtrl reconfigures the server; payload: JSON Ctrl.
	TCtrl Type = 0x06
	// TStats requests server statistics; empty payload. Reply payload:
	// JSON ServerStats.
	TStats Type = 0x07
	// TCheck runs the backend's structural invariant check quiescently;
	// empty payload.
	TCheck Type = 0x08
	// TReplSub subscribes the connection to the leader's replication
	// stream; payload: the first sequence number wanted (AppendReplSub).
	// The subscription hijacks the connection: it must be the only
	// request ever sent on it, and the server answers with an unbounded
	// sequence of TReplBatch frames echoing the subscribe id.
	TReplSub Type = 0x09
	// TReplPromote asks a follower to stop replicating and become a
	// serving leader (catching up from the dead leader's log first);
	// empty payload. Reply payload: JSON ReplStats at promotion.
	TReplPromote Type = 0x0a

	// TReply answers any data-plane request; payload: a result list
	// (AppendResults), one entry per op. Control-plane replies reuse
	// TReply with a type-specific payload (JSON for TStats, empty for
	// TCtrl and TCheck).
	TReply Type = 0x81
	// TErr reports a failed request; payload: UTF-8 message.
	TErr Type = 0x82
	// TReplBatch is one replication-stream message; payload: a watermark
	// plus zero or more redo records (AppendReplBatch).
	TReplBatch Type = 0x83
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TGet:
		return "GET"
	case TPut:
		return "PUT"
	case TDel:
		return "DEL"
	case TScan:
		return "SCAN"
	case TTxn:
		return "TXN"
	case TCtrl:
		return "CTRL"
	case TStats:
		return "STATS"
	case TCheck:
		return "CHECK"
	case TReplSub:
		return "REPLSUB"
	case TReplPromote:
		return "REPLPROMOTE"
	case TReply:
		return "REPLY"
	case TErr:
		return "ERR"
	case TReplBatch:
		return "REPLBATCH"
	default:
		return fmt.Sprintf("Type(0x%02x)", uint8(t))
	}
}

// ErrBadFrame reports a framing violation (magic, length bound or CRC);
// the connection cannot be trusted past it.
var ErrBadFrame = errors.New("wire: bad frame")

// AppendFrame encodes one frame onto buf and returns the extended
// slice. Allocation-free when buf has capacity.
func AppendFrame(buf []byte, id uint64, t Type, payload []byte) []byte {
	start := len(buf)
	buf = appendHeader(buf, id, t, 0, len(payload))
	buf = append(buf, payload...)
	return sealFrame(buf, start)
}

// AppendFrameT encodes one frame carrying flag extensions. A trace id
// is appended (and FlagTrace implied) whenever trace is nonzero; a zero
// trace with zero extra flags degenerates to the legacy encoding
// byte-for-byte. Allocation-free when buf has capacity.
func AppendFrameT(buf []byte, id uint64, t Type, flags uint8, trace uint64, payload []byte) []byte {
	if trace != 0 {
		flags |= FlagTrace
	}
	start := len(buf)
	buf = appendHeader(buf, id, t, flags, len(payload))
	buf = append(buf, payload...)
	return sealFrameT(buf, start, flags, trace)
}

// appendHeader encodes a frame header claiming an n-byte payload.
func appendHeader(buf []byte, id uint64, t Type, flags uint8, n int) []byte {
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(n))
	binary.LittleEndian.PutUint64(hdr[8:], id)
	hdr[16] = byte(t)
	hdr[17] = flags
	return append(buf, hdr[:]...)
}

// sealFrame finishes the frame whose header starts at start: the length
// field is patched to cover whatever was appended after the header, and
// the CRC trailer is computed over the whole frame. Splitting
// header/seal lets payload codecs encode straight into the framed
// buffer (AppendOpsFrame, AppendResultsFrame) with no intermediate
// payload slice.
func sealFrame(buf []byte, start int) []byte {
	return sealFrameExt(buf, start, 0)
}

// sealFrameT appends the extensions the flags announce (currently: the
// FlagTrace id) and seals the frame with the length field covering the
// payload only.
func sealFrameT(buf []byte, start int, flags uint8, trace uint64) []byte {
	ext := 0
	if flags&FlagTrace != 0 {
		var tb [traceExtBytes]byte
		binary.LittleEndian.PutUint64(tb[:], trace)
		buf = append(buf, tb[:]...)
		ext = traceExtBytes
	}
	return sealFrameExt(buf, start, ext)
}

// sealFrameExt seals a frame whose last ext appended bytes are flag
// extensions rather than payload: the length field must exclude them.
func sealFrameExt(buf []byte, start, ext int) []byte {
	binary.LittleEndian.PutUint32(buf[start+4:], uint32(len(buf)-start-headerBytes-ext))
	crc := crc32.Checksum(buf[start:], castagnoli)
	var tr [trailerBytes]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	return append(buf, tr[:]...)
}

// extBytes returns the extension size the flags announce, or an error
// on unknown bits.
func extBytes(flags uint8) (int, error) {
	if flags&^flagsKnown != 0 {
		return 0, fmt.Errorf("%w: unknown flag bits 0x%02x", ErrBadFrame, flags&^flagsKnown)
	}
	if flags&FlagTrace != 0 {
		return traceExtBytes, nil
	}
	return 0, nil
}

// ParseFrame decodes the frame at the head of b. size is the framed
// length consumed on success; payload aliases b. An invalid prefix
// (magic, length bound, CRC) returns an ErrBadFrame-wrapped error; an
// otherwise-valid but incomplete frame returns ErrShortFrame so stream
// readers can wait for more bytes.
func ParseFrame(b []byte) (id uint64, t Type, payload []byte, size int, err error) {
	id, t, _, _, payload, size, err = ParseFrameT(b)
	return id, t, payload, size, err
}

// ParseFrameT is ParseFrame plus the flag extensions: it additionally
// returns the frame's flags byte and the trace id (zero when FlagTrace
// is unset). Unknown flag bits are an ErrBadFrame.
func ParseFrameT(b []byte) (id uint64, t Type, flags uint8, trace uint64, payload []byte, size int, err error) {
	if len(b) < headerBytes {
		return 0, 0, 0, 0, nil, 0, ErrShortFrame
	}
	if binary.LittleEndian.Uint32(b[0:]) != frameMagic {
		return 0, 0, 0, 0, nil, 0, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	n := binary.LittleEndian.Uint32(b[4:])
	if n > MaxPayload {
		return 0, 0, 0, 0, nil, 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, n, MaxPayload)
	}
	flags = b[17]
	ext, err := extBytes(flags)
	if err != nil {
		return 0, 0, 0, 0, nil, 0, err
	}
	size = headerBytes + int(n) + ext + trailerBytes
	if len(b) < size {
		return 0, 0, 0, 0, nil, 0, ErrShortFrame
	}
	want := binary.LittleEndian.Uint32(b[size-trailerBytes:])
	if crc32.Checksum(b[:size-trailerBytes], castagnoli) != want {
		return 0, 0, 0, 0, nil, 0, fmt.Errorf("%w: CRC mismatch", ErrBadFrame)
	}
	if flags&FlagTrace != 0 {
		trace = binary.LittleEndian.Uint64(b[headerBytes+int(n):])
	}
	id = binary.LittleEndian.Uint64(b[8:])
	t = Type(b[16])
	return id, t, flags, trace, b[headerBytes : headerBytes+int(n)], size, nil
}

// ErrShortFrame marks an incomplete (but so-far-valid) frame prefix: a
// stream consumer should wait for more bytes rather than fail.
var ErrShortFrame = errors.New("wire: short frame")

// ReadFrame reads exactly one frame from r. The returned payload
// aliases buf (grown as needed); callers that retain it must copy.
// Frame validation failures return ErrBadFrame-wrapped errors; transport
// failures return the underlying I/O error (io.EOF only at a clean
// frame boundary).
func ReadFrame(r io.Reader, buf []byte) (id uint64, t Type, payload, nbuf []byte, err error) {
	id, t, _, _, payload, nbuf, err = ReadFrameT(r, buf)
	return id, t, payload, nbuf, err
}

// ReadFrameT is ReadFrame plus the flag extensions: it additionally
// returns the frame's flags byte and the trace id (zero when FlagTrace
// is unset). Unknown flag bits are an ErrBadFrame.
func ReadFrameT(r io.Reader, buf []byte) (id uint64, t Type, flags uint8, trace uint64, payload, nbuf []byte, err error) {
	if cap(buf) < headerBytes {
		buf = make([]byte, 0, 4096)
	}
	hdr := buf[:headerBytes]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, 0, 0, nil, buf, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		return 0, 0, 0, 0, nil, buf, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxPayload {
		return 0, 0, 0, 0, nil, buf, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, n, MaxPayload)
	}
	flags = hdr[17]
	ext, err := extBytes(flags)
	if err != nil {
		return 0, 0, 0, 0, nil, buf, err
	}
	size := headerBytes + int(n) + ext + trailerBytes
	if cap(buf) < size {
		nb := make([]byte, size, size+size/2)
		copy(nb, hdr)
		buf = nb
	}
	frame := buf[:size]
	if _, err := io.ReadFull(r, frame[headerBytes:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, 0, 0, nil, buf, err
	}
	want := binary.LittleEndian.Uint32(frame[size-trailerBytes:])
	if crc32.Checksum(frame[:size-trailerBytes], castagnoli) != want {
		return 0, 0, 0, 0, nil, buf, fmt.Errorf("%w: CRC mismatch", ErrBadFrame)
	}
	if flags&FlagTrace != 0 {
		trace = binary.LittleEndian.Uint64(frame[headerBytes+int(n):])
	}
	id = binary.LittleEndian.Uint64(frame[8:])
	t = Type(frame[16])
	return id, t, flags, trace, frame[headerBytes : headerBytes+int(n)], buf, nil
}
