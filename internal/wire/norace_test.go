//go:build !race

package wire

// raceEnabled gates exact-zero allocation assertions (race-detector
// instrumentation allocates).
const raceEnabled = false
