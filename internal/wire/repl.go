package wire

import (
	"encoding/binary"
	"fmt"
)

// Replication payload codecs. A leader ships committed WAL records to
// its followers as TReplBatch frames; the payload re-frames the log's
// (addr, val) redo pairs without the per-record magic/CRC — the wire
// frame's CRC already covers the whole batch — and prepends the
// leader's durable watermark so a follower can publish how far behind
// it is even when a batch carries no records.
//
// TReplBatch payload layout (all fields little-endian):
//
//	offset  size  field
//	0       8     watermark — the leader's highest fsynced sequence
//	8       4     count     — number of records
//	12      ...   records, each:
//	                seq    u64 — commit sequence number
//	                npairs u32 — redo pair count
//	                pairs  16·n — addr u64, val u64
//
// The encoding is canonical (fixed-width fields, exact counts, no
// trailing bytes), so any payload ParseReplBatch accepts re-encodes
// byte-identically — the property FuzzParseReplFrame pins.

// MaxReplRecords bounds the records of one TReplBatch.
const MaxReplRecords = 1 << 12

const (
	replBatchHeader = 12 // watermark u64 + count u32
	replRecHeader   = 12 // seq u64 + npairs u32
	// replRecHeaderT is the record header under FlagReplTrace: the legacy
	// header plus a trace u64 (the id of the client request whose commit
	// the record carries; zero when the commit was unsampled).
	replRecHeaderT = 20
	replPairBytes  = 16
)

// ReplPair is one redo word: the (address, value) unit of a WAL record.
type ReplPair struct {
	Addr uint64
	Val  uint64
}

// ReplRecord is one committed transaction's redo image in flight:
// first-write order, last-write-wins values, exactly as the WAL framed
// it.
type ReplRecord struct {
	Seq   uint64
	Pairs []ReplPair
	// Trace is the id of the sampled client request this commit
	// contained (zero when unsampled or when the batch was encoded
	// without FlagReplTrace). The follower closes the request's
	// replication span when it applies the record.
	Trace uint64
}

// ReplBatch is the TReplBatch payload: the leader's durable watermark
// plus a run of consecutive records (Records[i].Seq strictly
// increasing by 1 when non-empty; the parser does not enforce
// continuity — the follower does, against its own watermark).
type ReplBatch struct {
	Watermark uint64
	Records   []ReplRecord
}

// EncodedSize returns the payload bytes AppendReplBatch would produce.
func (b ReplBatch) EncodedSize() int {
	n := replBatchHeader
	for _, r := range b.Records {
		n += replRecHeader + len(r.Pairs)*replPairBytes
	}
	return n
}

// EncodedSizeT returns the payload bytes AppendReplBatchT would
// produce (traced record headers).
func (b ReplBatch) EncodedSizeT() int {
	n := replBatchHeader
	for _, r := range b.Records {
		n += replRecHeaderT + len(r.Pairs)*replPairBytes
	}
	return n
}

// AppendReplSub encodes a TReplSub payload: the first sequence number
// the follower wants (its watermark + 1).
func AppendReplSub(p []byte, from uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], from)
	return append(p, b[:]...)
}

// ParseReplSub decodes a TReplSub payload.
func ParseReplSub(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: repl subscribe payload of %d bytes", ErrBadFrame, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// AppendReplBatch encodes a TReplBatch payload onto p.
func AppendReplBatch(p []byte, b ReplBatch) []byte {
	var hdr [replBatchHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:], b.Watermark)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(b.Records)))
	p = append(p, hdr[:]...)
	for _, r := range b.Records {
		var rh [replRecHeader]byte
		binary.LittleEndian.PutUint64(rh[0:], r.Seq)
		binary.LittleEndian.PutUint32(rh[8:], uint32(len(r.Pairs)))
		p = append(p, rh[:]...)
		for _, pr := range r.Pairs {
			var pb [replPairBytes]byte
			binary.LittleEndian.PutUint64(pb[0:], pr.Addr)
			binary.LittleEndian.PutUint64(pb[8:], pr.Val)
			p = append(p, pb[:]...)
		}
	}
	return p
}

// AppendReplBatchT encodes a TReplBatch payload with traced record
// headers; the enclosing frame must carry FlagReplTrace so the parser
// picks the matching layout. Like the legacy encoding it is canonical:
// one valid byte sequence per value.
func AppendReplBatchT(p []byte, b ReplBatch) []byte {
	var hdr [replBatchHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:], b.Watermark)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(b.Records)))
	p = append(p, hdr[:]...)
	for _, r := range b.Records {
		var rh [replRecHeaderT]byte
		binary.LittleEndian.PutUint64(rh[0:], r.Seq)
		binary.LittleEndian.PutUint32(rh[8:], uint32(len(r.Pairs)))
		binary.LittleEndian.PutUint64(rh[12:], r.Trace)
		p = append(p, rh[:]...)
		for _, pr := range r.Pairs {
			var pb [replPairBytes]byte
			binary.LittleEndian.PutUint64(pb[0:], pr.Addr)
			binary.LittleEndian.PutUint64(pb[8:], pr.Val)
			p = append(p, pb[:]...)
		}
	}
	return p
}

// ParseReplBatch decodes a TReplBatch payload. The parse is strict —
// record and pair counts must account for every byte, with nothing
// trailing — so a truncated or padded payload is rejected rather than
// silently misapplied to a replica's heap.
func ParseReplBatch(p []byte) (ReplBatch, error) {
	return parseReplBatch(p, false)
}

// ParseReplBatchFlags decodes a TReplBatch payload using the layout the
// enclosing frame's flags announce (FlagReplTrace selects the traced
// record headers).
func ParseReplBatchFlags(p []byte, flags uint8) (ReplBatch, error) {
	return parseReplBatch(p, flags&FlagReplTrace != 0)
}

func parseReplBatch(p []byte, traced bool) (ReplBatch, error) {
	var b ReplBatch
	recHeader := replRecHeader
	if traced {
		recHeader = replRecHeaderT
	}
	if len(p) < replBatchHeader {
		return b, fmt.Errorf("%w: repl batch payload of %d bytes", ErrBadFrame, len(p))
	}
	b.Watermark = binary.LittleEndian.Uint64(p[0:])
	count := binary.LittleEndian.Uint32(p[8:])
	if count > MaxReplRecords {
		return b, fmt.Errorf("%w: %d repl records exceeds %d", ErrBadFrame, count, MaxReplRecords)
	}
	off := replBatchHeader
	if count > 0 {
		b.Records = make([]ReplRecord, 0, count)
	}
	for i := uint32(0); i < count; i++ {
		if len(p)-off < recHeader {
			return b, fmt.Errorf("%w: truncated repl record header", ErrBadFrame)
		}
		seq := binary.LittleEndian.Uint64(p[off:])
		npairs := binary.LittleEndian.Uint32(p[off+8:])
		var trace uint64
		if traced {
			trace = binary.LittleEndian.Uint64(p[off+12:])
		}
		off += recHeader
		if int(npairs) > (len(p)-off)/replPairBytes {
			return b, fmt.Errorf("%w: repl record claims %d pairs, %d bytes remain", ErrBadFrame, npairs, len(p)-off)
		}
		pairs := make([]ReplPair, npairs)
		for j := range pairs {
			pairs[j].Addr = binary.LittleEndian.Uint64(p[off:])
			pairs[j].Val = binary.LittleEndian.Uint64(p[off+8:])
			off += replPairBytes
		}
		b.Records = append(b.Records, ReplRecord{Seq: seq, Pairs: pairs, Trace: trace})
	}
	if off != len(p) {
		return b, fmt.Errorf("%w: %d trailing bytes after repl batch", ErrBadFrame, len(p)-off)
	}
	return b, nil
}

// ReplStats is the replication slice of ServerStats (and the
// TReplPromote reply payload): the node's role and how far its log or
// replay has progressed.
type ReplStats struct {
	// Role is "leader", "follower" or "promoted".
	Role string `json:"role"`
	// DurableSeq is a leader's highest fsynced sequence number.
	DurableSeq uint64 `json:"durable_seq,omitempty"`
	// Watermark is a follower's highest applied sequence number: reads
	// served by the node observe exactly commits 1..Watermark.
	Watermark uint64 `json:"watermark,omitempty"`
	// LeaderSeq is the durable watermark the leader last advertised to
	// this follower (Watermark lag = LeaderSeq - Watermark).
	LeaderSeq uint64 `json:"leader_seq,omitempty"`
	// Subscribers counts a leader's live replication streams.
	Subscribers int `json:"subscribers,omitempty"`
	// Reconnects counts a follower's stream re-establishments.
	Reconnects uint64 `json:"reconnects,omitempty"`
}
