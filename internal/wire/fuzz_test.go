package wire

import (
	"bytes"
	"testing"
)

// Round-trip fuzzers for the data-plane list codecs: whatever ParseOps
// or ParseResults accepts must re-encode byte-identically (the codecs
// are canonical — one valid encoding per value), and the framed
// variants (AppendOpsFrame, AppendResultsFrame) must produce exactly
// the bytes of the two-step encode they replace.

// FuzzOpsRoundTrip: ParseOps never panics; accepted payloads re-encode
// identically via AppendOps, and AppendOpsFrame agrees with
// AppendFrame-over-AppendOps.
func FuzzOpsRoundTrip(f *testing.F) {
	f.Add(AppendOps(nil, nil))
	f.Add(AppendOps(nil, []Op{{Kind: OpGet, Key: 7}}))
	f.Add(AppendOps(nil, []Op{
		{Kind: OpPut, Key: 1, Arg: 2},
		{Kind: OpRMW, Key: 3, Arg: 4},
		{Kind: OpScan, Key: 5, Arg: 6},
		{Kind: OpDel, Key: 9},
	}))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, p []byte) {
		ops, err := ParseOps(p, nil)
		if err != nil {
			return
		}
		re := AppendOps(nil, ops)
		if !bytes.Equal(re, p) {
			t.Fatalf("accepted op list does not re-encode identically: %d in, %d out", len(p), len(re))
		}
		// The single-buffer frame encoder must match the two-step path
		// bit for bit — a parser on the other side cannot tell which
		// encoder the client used.
		framed := AppendOpsFrame(nil, 42, ops)
		if want := AppendFrame(nil, 42, TTxn, re); !bytes.Equal(framed, want) {
			t.Fatal("AppendOpsFrame disagrees with AppendFrame over AppendOps")
		}
		id, typ, payload, _, err := ParseFrame(framed)
		if err != nil || id != 42 || typ != TTxn {
			t.Fatalf("framed op list does not parse back: id=%d type=%v err=%v", id, typ, err)
		}
		back, err := ParseOps(payload, nil)
		if err != nil {
			t.Fatalf("framed payload rejected: %v", err)
		}
		if len(back) != len(ops) {
			t.Fatalf("framed round trip lost ops: %d != %d", len(back), len(ops))
		}
	})
}

// FuzzResultsRoundTrip: the Result codec's mirror of FuzzOpsRoundTrip.
// Note OK bytes other than 0/1 decode to true but re-encode as 1, so
// only canonical inputs re-encode identically — the fuzzer checks
// value-level stability for everything accepted.
func FuzzResultsRoundTrip(f *testing.F) {
	f.Add(AppendResults(nil, nil))
	f.Add(AppendResults(nil, []Result{{OK: true, Val: 99}, {OK: false, Val: 0}}))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, p []byte) {
		rs, err := ParseResults(p, nil)
		if err != nil {
			return
		}
		re := AppendResults(nil, rs)
		rs2, err := ParseResults(re, nil)
		if err != nil {
			t.Fatalf("re-encoded result list rejected: %v", err)
		}
		if len(rs2) != len(rs) {
			t.Fatalf("re-encode changed count: %d != %d", len(rs2), len(rs))
		}
		for i := range rs {
			if rs[i] != rs2[i] {
				t.Fatalf("result %d unstable across re-encode: %+v != %+v", i, rs[i], rs2[i])
			}
		}
		framed := AppendResultsFrame(nil, 7, rs)
		if want := AppendFrame(nil, 7, TReply, re); !bytes.Equal(framed, want) {
			t.Fatal("AppendResultsFrame disagrees with AppendFrame over AppendResults")
		}
		id, typ, payload, _, err := ParseFrame(framed)
		if err != nil || id != 7 || typ != TReply {
			t.Fatalf("framed result list does not parse back: id=%d type=%v err=%v", id, typ, err)
		}
		if _, err := ParseResults(payload, nil); err != nil {
			t.Fatalf("framed payload rejected: %v", err)
		}
	})
}

// TestFrameCodecsReuseBuffers pins the pooled-buffer contract: both
// framed encoders append in place without reallocating when capacity
// suffices.
func TestFrameCodecsReuseBuffers(t *testing.T) {
	ops := []Op{{Kind: OpRMW, Key: 1, Arg: 2}, {Kind: OpGet, Key: 3}}
	rs := []Result{{OK: true, Val: 3}, {OK: true, Val: 4}}

	buf := make([]byte, 0, 1024)
	out := AppendOpsFrame(buf, 1, ops)
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendOpsFrame reallocated despite capacity")
	}
	out2 := AppendResultsFrame(out[:0], 2, rs)
	if &out2[0] != &out[:1][0] {
		t.Fatal("AppendResultsFrame reallocated despite capacity")
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendOpsFrame(buf[:0], 1, ops)
		buf = AppendResultsFrame(buf[:0], 2, rs)
	})
	if allocs != 0 && !raceEnabled {
		t.Fatalf("framed encoders allocate %.2f times with a warm buffer, want 0", allocs)
	}
}
