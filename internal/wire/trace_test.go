package wire

import (
	"bytes"
	"testing"
)

// The trace frame extension's contract: zero trace degenerates to the
// legacy encoding byte-for-byte, nonzero trace survives both parse
// paths, and unknown flag bits are a framing error.

func TestTraceFrameRoundTrip(t *testing.T) {
	ops := []Op{{Kind: OpPut, Key: 1, Arg: 2}, {Kind: OpGet, Key: 3}}

	// Zero trace: byte-identical to the legacy encoder.
	legacy := AppendOpsFrame(nil, 42, ops)
	if got := AppendOpsFrameT(nil, 42, 0, ops); !bytes.Equal(got, legacy) {
		t.Fatal("AppendOpsFrameT with zero trace diverges from the legacy encoding")
	}
	if got := AppendFrameT(nil, 42, TTxn, 0, 0, AppendOps(nil, ops)); !bytes.Equal(got, legacy) {
		t.Fatal("AppendFrameT with zero trace diverges from the legacy encoding")
	}

	// Nonzero trace: both parse paths surface it; the legacy parser
	// still decodes id/type/payload.
	const trace = uint64(0xdeadbeefcafe)
	framed := AppendOpsFrameT(nil, 42, trace, ops)
	if len(framed) != len(legacy)+traceExtBytes {
		t.Fatalf("traced frame is %d bytes, want legacy+%d = %d", len(framed), traceExtBytes, len(legacy)+traceExtBytes)
	}
	id, typ, flags, tr, payload, size, err := ParseFrameT(framed)
	if err != nil || id != 42 || typ != TTxn || flags != FlagTrace || tr != trace || size != len(framed) {
		t.Fatalf("ParseFrameT: id=%d type=%v flags=%#x trace=%#x size=%d err=%v", id, typ, flags, tr, size, err)
	}
	if back, err := ParseOps(payload, nil); err != nil || len(back) != len(ops) {
		t.Fatalf("traced payload: %d ops err=%v", len(back), err)
	}
	if id, typ, _, _, err := ParseFrame(framed); err != nil || id != 42 || typ != TTxn {
		t.Fatalf("legacy ParseFrame on traced frame: id=%d type=%v err=%v", id, typ, err)
	}

	id, typ, flags, tr, _, _, err = ReadFrameT(bytes.NewReader(framed), nil)
	if err != nil || id != 42 || typ != TTxn || flags != FlagTrace || tr != trace {
		t.Fatalf("ReadFrameT: id=%d type=%v flags=%#x trace=%#x err=%v", id, typ, flags, tr, err)
	}

	// Reply echo.
	rs := []Result{{OK: true, Val: 9}}
	reply := AppendResultsFrameT(nil, 42, trace, rs)
	if _, typ, _, tr, _, _, err := ParseFrameT(reply); err != nil || typ != TReply || tr != trace {
		t.Fatalf("reply echo: type=%v trace=%#x err=%v", typ, tr, err)
	}
	if got := AppendResultsFrameT(nil, 42, 0, rs); !bytes.Equal(got, AppendResultsFrame(nil, 42, rs)) {
		t.Fatal("AppendResultsFrameT with zero trace diverges from the legacy encoding")
	}
}

func TestUnknownFlagBitsRejected(t *testing.T) {
	frame := AppendFrame(nil, 1, TTxn, AppendOps(nil, nil))
	frame[17] = 0x80
	// Re-seal so only the flag byte is wrong, not the CRC.
	frame = sealFrameExt(frame[:len(frame)-trailerBytes], 0, 0)
	if _, _, _, _, _, _, err := ParseFrameT(frame); err == nil {
		t.Fatal("unknown flag bits accepted")
	}
	if _, _, _, _, _, _, err := ReadFrameT(bytes.NewReader(frame), nil); err == nil {
		t.Fatal("unknown flag bits accepted by the stream reader")
	}
}

func TestReplBatchTracedRoundTrip(t *testing.T) {
	b := ReplBatch{
		Watermark: 10,
		Records: []ReplRecord{
			{Seq: 11, Pairs: []ReplPair{{Addr: 1, Val: 2}}, Trace: 0xfeed},
			{Seq: 12, Pairs: nil, Trace: 0},
			{Seq: 13, Pairs: []ReplPair{{Addr: 3, Val: 4}, {Addr: 5, Val: 6}}, Trace: 0xbeef},
		},
	}
	p := AppendReplBatchT(nil, b)
	if len(p) != b.EncodedSizeT() {
		t.Fatalf("EncodedSizeT %d != encoded %d", b.EncodedSizeT(), len(p))
	}
	back, err := ParseReplBatchFlags(p, FlagReplTrace)
	if err != nil {
		t.Fatal(err)
	}
	if back.Watermark != b.Watermark || len(back.Records) != len(b.Records) {
		t.Fatalf("traced batch round trip: %+v", back)
	}
	for i, r := range back.Records {
		want := b.Records[i]
		if r.Seq != want.Seq || r.Trace != want.Trace || len(r.Pairs) != len(want.Pairs) {
			t.Fatalf("record %d = %+v, want %+v", i, r, want)
		}
	}
	// Canonical: re-encode is byte-identical.
	if re := AppendReplBatchT(nil, back); !bytes.Equal(re, p) {
		t.Fatal("traced repl batch does not re-encode identically")
	}
	// Without the flag the traced payload must be rejected (its record
	// headers don't tile the legacy layout), never silently misparsed
	// into wrong pairs... unless a coincidental parse succeeds — then it
	// must at least not be trusted for this batch shape.
	if legacy, err := ParseReplBatchFlags(p, 0); err == nil {
		if len(legacy.Records) == len(b.Records) && legacy.Records[0].Seq == b.Records[0].Seq &&
			len(legacy.Records[0].Pairs) == len(b.Records[0].Pairs) {
			t.Fatal("traced payload parsed identically under the legacy layout")
		}
	}
	// Legacy encoding drops traces; parsing it with the flag cleared
	// round-trips with zero traces.
	lp := AppendReplBatch(nil, b)
	lb, err := ParseReplBatchFlags(lp, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range lb.Records {
		if r.Trace != 0 {
			t.Fatalf("legacy record %d carries trace %#x", i, r.Trace)
		}
	}
}
