//go:build race

package wire

// raceEnabled gates exact-zero allocation assertions; see norace_test.go.
const raceEnabled = true
