// Benchmarks regenerating the paper's evaluation under `go test -bench`:
// one benchmark per figure (6–10) plus this reproduction's ablations.
// Each figure benchmark runs every system of that figure at the paper's
// workload parameters on the simulated 10-core SMT-8 POWER8, and reports
// throughput (tx/s) together with the abort breakdown per operation —
// the two panels of the paper's figures.
//
// The full thread ladder and long windows live in cmd/sihtm-bench; here
// each figure is sampled at representative thread counts so the whole
// suite stays runnable as a unit. See EXPERIMENTS.md for the mapping and
// for measured-vs-paper tables.
package sihtm_test

import (
	"fmt"
	"testing"

	"sihtm/internal/harness"
	"sihtm/internal/htm"
	"sihtm/internal/htmtm"
	"sihtm/internal/memsim"
	"sihtm/internal/p8tm"
	"sihtm/internal/sihtm"
	"sihtm/internal/silo"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
	"sihtm/internal/workload/hashmap"
	"sihtm/internal/workload/tpcc"
)

// benchThreads are the ladder points sampled by the figure benchmarks:
// single-core, all-cores, and the SMT-2 region.
var benchThreads = []int{1, 8, 16}

func newBenchSystem(b *testing.B, name string, m *htm.Machine, heap *memsim.Heap, threads int) tm.System {
	b.Helper()
	switch name {
	case "htm":
		return htmtm.NewSystem(m, threads, htmtm.Config{})
	case "si-htm":
		return sihtm.NewSystem(m, threads, sihtm.Config{})
	case "p8tm":
		return p8tm.NewSystem(m, threads, p8tm.Config{})
	case "silo":
		return silo.NewSystem(heap, threads)
	default:
		b.Fatalf("unknown system %q", name)
		return nil
	}
}

// reportResult attaches the figure-panel metrics to the benchmark.
func reportResult(b *testing.B, r harness.Result) {
	b.Helper()
	b.ReportMetric(r.Throughput, "tx/s")
	att := float64(r.Stats.Attempts())
	if att == 0 {
		att = 1
	}
	b.ReportMetric(100*r.Stats.AbortRate(), "abort%")
	b.ReportMetric(100*float64(r.Stats.Aborts[stats.AbortCapacity])/att, "capacity%")
	b.ReportMetric(float64(r.Stats.Fallbacks), "fallbacks")
}

// benchHashmap runs one hash-map figure configuration.
func benchHashmap(b *testing.B, buckets, elems, roPercent int) {
	for _, system := range []string{"htm", "si-htm"} {
		for _, threads := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", system, threads), func(b *testing.B) {
				cfg := hashmap.BenchConfig{
					Buckets:           buckets,
					ElementsPerBucket: elems,
					ReadOnlyPercent:   roPercent,
					Seed:              7,
				}
				heap := memsim.NewHeapLines(cfg.HeapLinesNeeded() + (1 << 14))
				m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
				bench, err := hashmap.NewBenchmark(heap, cfg)
				if err != nil {
					b.Fatal(err)
				}
				sys := newBenchSystem(b, system, m, heap, threads)
				perThread := b.N/threads + 1
				b.ResetTimer()
				r := harness.RunOps(sys, threads, perThread, func(thread int) func() {
					w := bench.NewWorker(sys, thread, uint64(13*threads+thread))
					return w.Op
				})
				b.StopTimer()
				reportResult(b, r)
			})
		}
	}
}

// benchTPCC runs one TPC-C figure configuration.
func benchTPCC(b *testing.B, mix tpcc.Mix, lowContention bool) {
	for _, system := range []string{"htm", "si-htm", "p8tm", "silo"} {
		for _, threads := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", system, threads), func(b *testing.B) {
				warehouses := 1
				if lowContention {
					warehouses = threads
					if warehouses > 8 {
						warehouses = 8
					}
				}
				cfg := tpcc.Config{Warehouses: warehouses, ScaleDiv: 20, OrderRing: 512, Seed: 3}
				heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
				m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
				db, err := tpcc.NewDB(heap, cfg)
				if err != nil {
					b.Fatal(err)
				}
				sys := newBenchSystem(b, system, m, heap, threads)
				perThread := b.N/threads + 1
				b.ResetTimer()
				r := harness.RunOps(sys, threads, perThread, func(thread int) func() {
					w, err := db.NewWorker(sys, thread, mix, uint64(29*threads+thread))
					if err != nil {
						panic(err)
					}
					return func() { w.Op() }
				})
				b.StopTimer()
				reportResult(b, r)
				if err := db.CheckConsistency(); err != nil {
					b.Fatalf("post-run consistency: %v", err)
				}
			})
		}
	}
}

// Figure 6: hash-map, large footprint, 90% read-only.
func BenchmarkFig6HashmapLarge90ROLowContention(b *testing.B)  { benchHashmap(b, 1000, 200, 90) }
func BenchmarkFig6HashmapLarge90ROHighContention(b *testing.B) { benchHashmap(b, 10, 200, 90) }

// Figure 7: hash-map, large footprint, 50% read-only.
func BenchmarkFig7HashmapLarge50ROLowContention(b *testing.B)  { benchHashmap(b, 1000, 200, 50) }
func BenchmarkFig7HashmapLarge50ROHighContention(b *testing.B) { benchHashmap(b, 10, 200, 50) }

// Figure 8: hash-map, small footprint, 90% read-only.
func BenchmarkFig8HashmapSmall90ROLowContention(b *testing.B)  { benchHashmap(b, 1000, 50, 90) }
func BenchmarkFig8HashmapSmall90ROHighContention(b *testing.B) { benchHashmap(b, 10, 50, 90) }

// Figure 9: TPC-C standard mix.
func BenchmarkFig9TPCCStandardLowContention(b *testing.B)  { benchTPCC(b, tpcc.StandardMix, true) }
func BenchmarkFig9TPCCStandardHighContention(b *testing.B) { benchTPCC(b, tpcc.StandardMix, false) }

// Figure 10: TPC-C read-dominated mix.
func BenchmarkFig10TPCCReadDominatedLowContention(b *testing.B) {
	benchTPCC(b, tpcc.ReadDominatedMix, true)
}
func BenchmarkFig10TPCCReadDominatedHighContention(b *testing.B) {
	benchTPCC(b, tpcc.ReadDominatedMix, false)
}

// Ablation A1: the capacity cliff — read footprint sweep at one thread.
func BenchmarkAblationCapacityCliff(b *testing.B) {
	for _, system := range []string{"htm", "si-htm"} {
		for _, footprint := range []int{16, 48, 64, 96, 192} {
			b.Run(fmt.Sprintf("%s/lines=%d", system, footprint), func(b *testing.B) {
				heap := memsim.NewHeapLines(footprint*2 + (1 << 12))
				m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
				lines := make([]memsim.Addr, footprint)
				for i := range lines {
					lines[i] = heap.AllocLine()
				}
				out := heap.AllocLine()
				sys := newBenchSystem(b, system, m, heap, 1)
				b.ResetTimer()
				r := harness.RunOps(sys, 1, b.N, func(int) func() {
					return func() {
						sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
							var sum uint64
							for _, a := range lines {
								sum += ops.Read(a)
							}
							ops.Write(out, sum)
						})
					}
				})
				b.StopTimer()
				reportResult(b, r)
			})
		}
	}
}

// Ablation A2: TMCAM size sensitivity on the Figure 6 workload.
func BenchmarkAblationTMCAMSize(b *testing.B) {
	for _, system := range []string{"htm", "si-htm"} {
		for _, size := range []int{32, 64, 128} {
			b.Run(fmt.Sprintf("%s/tmcam=%d", system, size), func(b *testing.B) {
				cfg := hashmap.BenchConfig{Buckets: 1000, ElementsPerBucket: 200, ReadOnlyPercent: 90, Seed: 5}
				heap := memsim.NewHeapLines(cfg.HeapLinesNeeded() + (1 << 14))
				m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper(), TMCAMLines: size})
				bench, err := hashmap.NewBenchmark(heap, cfg)
				if err != nil {
					b.Fatal(err)
				}
				const threads = 8
				sys := newBenchSystem(b, system, m, heap, threads)
				b.ResetTimer()
				r := harness.RunOps(sys, threads, b.N/threads+1, func(thread int) func() {
					w := bench.NewWorker(sys, thread, uint64(3*threads+thread))
					return w.Op
				})
				b.StopTimer()
				reportResult(b, r)
			})
		}
	}
}

// Ablation A3: SI-HTM's read-only fast path on vs off.
func BenchmarkAblationNoROFastPath(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "fastpath"
		if disable {
			name = "no-fastpath"
		}
		b.Run(name, func(b *testing.B) {
			cfg := hashmap.BenchConfig{Buckets: 1000, ElementsPerBucket: 200, ReadOnlyPercent: 90, Seed: 5}
			heap := memsim.NewHeapLines(cfg.HeapLinesNeeded() + (1 << 14))
			m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
			bench, err := hashmap.NewBenchmark(heap, cfg)
			if err != nil {
				b.Fatal(err)
			}
			const threads = 8
			sys := sihtm.NewSystem(m, threads, sihtm.Config{DisableROFastPath: disable})
			b.ResetTimer()
			r := harness.RunOps(sys, threads, b.N/threads+1, func(thread int) func() {
				w := bench.NewWorker(sys, thread, uint64(23*threads+thread))
				return w.Op
			})
			b.StopTimer()
			reportResult(b, r)
		})
	}
}

// Ablation A4a: the §6 killing policy under high update contention.
func BenchmarkAblationKillerPolicy(b *testing.B) {
	for _, killerSpins := range []int{0, 1 << 12} {
		name := "baseline"
		if killerSpins > 0 {
			name = "killer"
		}
		b.Run(name, func(b *testing.B) {
			cfg := hashmap.BenchConfig{Buckets: 10, ElementsPerBucket: 200, ReadOnlyPercent: 50, Seed: 5}
			heap := memsim.NewHeapLines(cfg.HeapLinesNeeded() + (1 << 14))
			m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
			bench, err := hashmap.NewBenchmark(heap, cfg)
			if err != nil {
				b.Fatal(err)
			}
			const threads = 8
			sys := sihtm.NewSystem(m, threads, sihtm.Config{KillerSpins: killerSpins})
			b.ResetTimer()
			r := harness.RunOps(sys, threads, b.N/threads+1, func(thread int) func() {
				w := bench.NewWorker(sys, thread, uint64(37*threads+thread))
				return w.Op
			})
			b.StopTimer()
			reportResult(b, r)
		})
	}
}

// Ablation A4b: the §6 batching policy — pairs of update transactions
// merged into one ROT + one quiescence vs run individually.
func BenchmarkAblationBatchingPolicy(b *testing.B) {
	for _, batched := range []bool{false, true} {
		name := "individual"
		if batched {
			name = "batched-pairs"
		}
		b.Run(name, func(b *testing.B) {
			heap := memsim.NewHeapLines(1 << 14)
			m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
			const threads = 8
			sys := sihtm.NewSystem(m, threads, sihtm.Config{})
			// Per-thread disjoint counters: the cost under measurement is
			// pure quiescence, which batching halves.
			counters := make([]memsim.Addr, threads)
			for i := range counters {
				counters[i] = heap.AllocLine()
			}
			b.ResetTimer()
			r := harness.RunOps(sys, threads, b.N/threads+1, func(thread int) func() {
				a := counters[thread]
				inc := func(ops tm.Ops) { ops.Write(a, ops.Read(a)+1) }
				if batched {
					pair := []func(tm.Ops){inc, inc}
					return func() { sys.AtomicBatch(thread, pair) }
				}
				return func() {
					sys.Atomic(thread, tm.KindUpdate, inc)
					sys.Atomic(thread, tm.KindUpdate, inc)
				}
			})
			b.StopTimer()
			reportResult(b, r)
		})
	}
}

// Ablation A5: SMT placement — 8 threads spread over 8 cores vs stacked
// on one core, on the TPC-C standard mix.
func BenchmarkAblationSMTPlacement(b *testing.B) {
	for _, system := range []string{"htm", "si-htm"} {
		for _, stacked := range []bool{false, true} {
			name := "spread"
			topo := topology.New(8, 8)
			if stacked {
				name = "stacked"
				topo = topology.New(1, 8)
			}
			b.Run(fmt.Sprintf("%s/%s", system, name), func(b *testing.B) {
				cfg := tpcc.Config{Warehouses: 8, ScaleDiv: 20, OrderRing: 512, Seed: 9}
				heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
				m := htm.NewMachine(heap, htm.Config{Topology: topo})
				db, err := tpcc.NewDB(heap, cfg)
				if err != nil {
					b.Fatal(err)
				}
				const threads = 8
				sys := newBenchSystem(b, system, m, heap, threads)
				b.ResetTimer()
				r := harness.RunOps(sys, threads, b.N/threads+1, func(thread int) func() {
					w, err := db.NewWorker(sys, thread, tpcc.StandardMix, uint64(41*threads+thread))
					if err != nil {
						panic(err)
					}
					return func() { w.Op() }
				})
				b.StopTimer()
				reportResult(b, r)
				if err := db.CheckConsistency(); err != nil {
					b.Fatalf("post-run consistency: %v", err)
				}
			})
		}
	}
}
