// Benchmarks regenerating the paper's evaluation under `go test -bench`:
// one benchmark per figure (6–10) plus this reproduction's ablations.
// Figure benchmarks are thin views over the experiment registry
// (internal/experiments): they drive the registry sweeps' own Setup —
// the same workload construction cmd/repro and cmd/sihtm-bench measure —
// through testing.B's op-count harness, and report throughput (tx/s)
// together with the abort breakdown per operation, the two panels of the
// paper's figures.
//
// The full thread ladder and long windows live in cmd/repro; here each
// figure is sampled at representative thread counts so the whole suite
// stays runnable as a unit. See docs/experiments.md for the mapping and
// for measured-vs-paper tables.
package sihtm_test

import (
	"fmt"
	"testing"

	"sihtm/internal/experiments"
	"sihtm/internal/harness"
	"sihtm/internal/hotbench"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/sihtm"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
	"sihtm/internal/workload/hashmap"
	"sihtm/internal/workload/tpcc"
)

// benchThreads are the ladder points sampled by the figure benchmarks:
// single-core, all-cores, and the SMT-2 region.
var benchThreads = []int{1, 8, 16}

func newBenchSystem(b *testing.B, name string, m *htm.Machine, heap *memsim.Heap, threads int) tm.System {
	b.Helper()
	sys, err := experiments.NewSystem(name, m, heap, threads)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// reportResult attaches the figure-panel metrics to the benchmark.
func reportResult(b *testing.B, r harness.Result) {
	b.Helper()
	b.ReportMetric(r.Throughput, "tx/s")
	att := float64(r.Stats.Attempts())
	if att == 0 {
		att = 1
	}
	b.ReportMetric(100*r.Stats.AbortRate(), "abort%")
	b.ReportMetric(100*float64(r.Stats.Aborts[stats.AbortCapacity])/att, "capacity%")
	b.ReportMetric(float64(r.Stats.Fallbacks), "fallbacks")
}

// benchFigure runs one registry figure panel through testing.B: for
// every (system, sampled thread count) cell it builds the workload with
// the registry sweep's own Setup and drives it with RunOps.
func benchFigure(b *testing.B, id string, sc experiments.Scale) {
	sweep, ok := experiments.SweepFor(id, sc)
	if !ok {
		b.Fatalf("registry entry %q is not sweep-backed", id)
	}
	for _, system := range sweep.Systems {
		for _, threads := range benchThreads {
			b.Run(fmt.Sprintf("%s/threads=%d", system, threads), func(b *testing.B) {
				sys, mkWorker, check, err := sweep.Setup(system, threads)
				if err != nil {
					b.Fatal(err)
				}
				perThread := b.N/threads + 1
				b.ResetTimer()
				r := harness.RunOps(sys, threads, perThread, mkWorker)
				b.StopTimer()
				reportResult(b, r)
				if check != nil {
					if err := check(); err != nil {
						b.Fatalf("post-run check: %v", err)
					}
				}
			})
		}
	}
}

// Figure panels use the paper's workload sizes; the TPC-C panels shrink
// population (WorkloadDiv 2 → ScaleDiv 20) so setup stays benchmark-
// friendly, matching the registry's "quick"-style scaling.
var (
	benchHashmapScale = experiments.Scale{}
	benchTPCCScale    = experiments.Scale{WorkloadDiv: 2}
)

// Figure 6: hash-map, large footprint, 90% read-only.
func BenchmarkFig6HashmapLarge90ROLowContention(b *testing.B) {
	benchFigure(b, "fig6-low", benchHashmapScale)
}
func BenchmarkFig6HashmapLarge90ROHighContention(b *testing.B) {
	benchFigure(b, "fig6-high", benchHashmapScale)
}

// Figure 7: hash-map, large footprint, 50% read-only.
func BenchmarkFig7HashmapLarge50ROLowContention(b *testing.B) {
	benchFigure(b, "fig7-low", benchHashmapScale)
}
func BenchmarkFig7HashmapLarge50ROHighContention(b *testing.B) {
	benchFigure(b, "fig7-high", benchHashmapScale)
}

// Figure 8: hash-map, small footprint, 90% read-only.
func BenchmarkFig8HashmapSmall90ROLowContention(b *testing.B) {
	benchFigure(b, "fig8-low", benchHashmapScale)
}
func BenchmarkFig8HashmapSmall90ROHighContention(b *testing.B) {
	benchFigure(b, "fig8-high", benchHashmapScale)
}

// Figure 9: TPC-C standard mix.
func BenchmarkFig9TPCCStandardLowContention(b *testing.B) { benchFigure(b, "fig9-low", benchTPCCScale) }
func BenchmarkFig9TPCCStandardHighContention(b *testing.B) {
	benchFigure(b, "fig9-high", benchTPCCScale)
}

// Figure 10: TPC-C read-dominated mix.
func BenchmarkFig10TPCCReadDominatedLowContention(b *testing.B) {
	benchFigure(b, "fig10-low", benchTPCCScale)
}
func BenchmarkFig10TPCCReadDominatedHighContention(b *testing.B) {
	benchFigure(b, "fig10-high", benchTPCCScale)
}

// BenchmarkAtomic is the end-to-end hot-path benchmark: one SI-HTM
// Atomic update transaction reading and writing 1→4096 cache lines on a
// single thread — the whole software stack (ROT attempt, commit,
// quiescence) with zero contention, so it isolates per-footprint
// software overhead. The same scenario backs `repro bench` and
// BENCH_hotpath.json (see docs/performance.md).
func BenchmarkAtomic(b *testing.B) {
	for _, c := range hotbench.CasesFor("atomic", hotbench.DefaultSweep) {
		b.Run(c.Sub(), func(b *testing.B) {
			run := c.Setup()
			run(1)
			b.ReportAllocs()
			b.ResetTimer()
			run(b.N)
		})
	}
}

// Ablation A1: the capacity cliff — read footprint sweep at one thread.
func BenchmarkAblationCapacityCliff(b *testing.B) {
	for _, system := range []string{"htm", "si-htm"} {
		for _, footprint := range []int{16, 48, 64, 96, 192} {
			b.Run(fmt.Sprintf("%s/lines=%d", system, footprint), func(b *testing.B) {
				heap := memsim.NewHeapLines(footprint*2 + (1 << 12))
				m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
				lines := make([]memsim.Addr, footprint)
				for i := range lines {
					lines[i] = heap.AllocLine()
				}
				out := heap.AllocLine()
				sys := newBenchSystem(b, system, m, heap, 1)
				b.ResetTimer()
				r := harness.RunOps(sys, 1, b.N, func(int) func() {
					return func() {
						sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
							var sum uint64
							for _, a := range lines {
								sum += ops.Read(a)
							}
							ops.Write(out, sum)
						})
					}
				})
				b.StopTimer()
				reportResult(b, r)
			})
		}
	}
}

// Ablation A2: TMCAM size sensitivity on the Figure 6 workload.
func BenchmarkAblationTMCAMSize(b *testing.B) {
	for _, system := range []string{"htm", "si-htm"} {
		for _, size := range []int{32, 64, 128} {
			b.Run(fmt.Sprintf("%s/tmcam=%d", system, size), func(b *testing.B) {
				cfg := hashmap.BenchConfig{Buckets: 1000, ElementsPerBucket: 200, ReadOnlyPercent: 90, Seed: 5}
				heap := memsim.NewHeapLines(cfg.HeapLinesNeeded() + (1 << 14))
				m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper(), TMCAMLines: size})
				bench, err := hashmap.NewBenchmark(heap, cfg)
				if err != nil {
					b.Fatal(err)
				}
				const threads = 8
				sys := newBenchSystem(b, system, m, heap, threads)
				b.ResetTimer()
				r := harness.RunOps(sys, threads, b.N/threads+1, func(thread int) func() {
					w := bench.NewWorker(sys, thread)
					return w.Op
				})
				b.StopTimer()
				reportResult(b, r)
			})
		}
	}
}

// Ablation A3: SI-HTM's read-only fast path on vs off.
func BenchmarkAblationNoROFastPath(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "fastpath"
		if disable {
			name = "no-fastpath"
		}
		b.Run(name, func(b *testing.B) {
			cfg := hashmap.BenchConfig{Buckets: 1000, ElementsPerBucket: 200, ReadOnlyPercent: 90, Seed: 5}
			heap := memsim.NewHeapLines(cfg.HeapLinesNeeded() + (1 << 14))
			m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
			bench, err := hashmap.NewBenchmark(heap, cfg)
			if err != nil {
				b.Fatal(err)
			}
			const threads = 8
			sys := sihtm.NewSystem(m, threads, sihtm.Config{DisableROFastPath: disable})
			b.ResetTimer()
			r := harness.RunOps(sys, threads, b.N/threads+1, func(thread int) func() {
				w := bench.NewWorker(sys, thread)
				return w.Op
			})
			b.StopTimer()
			reportResult(b, r)
		})
	}
}

// Ablation A4a: the §6 killing policy under high update contention.
func BenchmarkAblationKillerPolicy(b *testing.B) {
	for _, killerSpins := range []int{0, 1 << 12} {
		name := "baseline"
		if killerSpins > 0 {
			name = "killer"
		}
		b.Run(name, func(b *testing.B) {
			cfg := hashmap.BenchConfig{Buckets: 10, ElementsPerBucket: 200, ReadOnlyPercent: 50, Seed: 5}
			heap := memsim.NewHeapLines(cfg.HeapLinesNeeded() + (1 << 14))
			m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
			bench, err := hashmap.NewBenchmark(heap, cfg)
			if err != nil {
				b.Fatal(err)
			}
			const threads = 8
			sys := sihtm.NewSystem(m, threads, sihtm.Config{KillerSpins: killerSpins})
			b.ResetTimer()
			r := harness.RunOps(sys, threads, b.N/threads+1, func(thread int) func() {
				w := bench.NewWorker(sys, thread)
				return w.Op
			})
			b.StopTimer()
			reportResult(b, r)
		})
	}
}

// Ablation A4b: the §6 batching policy — pairs of update transactions
// merged into one ROT + one quiescence vs run individually.
func BenchmarkAblationBatchingPolicy(b *testing.B) {
	for _, batched := range []bool{false, true} {
		name := "individual"
		if batched {
			name = "batched-pairs"
		}
		b.Run(name, func(b *testing.B) {
			heap := memsim.NewHeapLines(1 << 14)
			m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
			const threads = 8
			sys := sihtm.NewSystem(m, threads, sihtm.Config{})
			// Per-thread disjoint counters: the cost under measurement is
			// pure quiescence, which batching halves.
			counters := make([]memsim.Addr, threads)
			for i := range counters {
				counters[i] = heap.AllocLine()
			}
			b.ResetTimer()
			r := harness.RunOps(sys, threads, b.N/threads+1, func(thread int) func() {
				a := counters[thread]
				inc := func(ops tm.Ops) { ops.Write(a, ops.Read(a)+1) }
				if batched {
					pair := []func(tm.Ops){inc, inc}
					return func() { sys.AtomicBatch(thread, pair) }
				}
				return func() {
					sys.Atomic(thread, tm.KindUpdate, inc)
					sys.Atomic(thread, tm.KindUpdate, inc)
				}
			})
			b.StopTimer()
			reportResult(b, r)
		})
	}
}

// Ablation A5: SMT placement — 8 threads spread over 8 cores vs stacked
// on one core, on the TPC-C standard mix.
func BenchmarkAblationSMTPlacement(b *testing.B) {
	for _, system := range []string{"htm", "si-htm"} {
		for _, stacked := range []bool{false, true} {
			name := "spread"
			topo := topology.New(8, 8)
			if stacked {
				name = "stacked"
				topo = topology.New(1, 8)
			}
			b.Run(fmt.Sprintf("%s/%s", system, name), func(b *testing.B) {
				cfg := tpcc.Config{Warehouses: 8, ScaleDiv: 20, OrderRing: 512, Seed: 9}
				heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
				m := htm.NewMachine(heap, htm.Config{Topology: topo})
				db, err := tpcc.NewDB(heap, cfg)
				if err != nil {
					b.Fatal(err)
				}
				const threads = 8
				sys := newBenchSystem(b, system, m, heap, threads)
				b.ResetTimer()
				r := harness.RunOps(sys, threads, b.N/threads+1, func(thread int) func() {
					w, err := db.NewWorker(sys, thread, tpcc.StandardMix)
					if err != nil {
						panic(err)
					}
					return func() { w.Op() }
				})
				b.StopTimer()
				reportResult(b, r)
				if err := db.CheckConsistency(); err != nil {
					b.Fatalf("post-run consistency: %v", err)
				}
			})
		}
	}
}
